// Property-based sweeps over the numeric substrate the GEF pipeline
// stands on, driven by a fixed-seed gef::Rng so every run checks the
// same 200+ random configurations:
//
//  * B-spline bases (uniform-knot and FromSites): partition of unity,
//    non-negativity, local support (≤ degree+1 active functions), and
//    derivative consistency of random spline curves (Richardson check
//    on central differences).
//  * Greenwald–Khanna quantile sketch vs exact quantiles on adversarial
//    streams: sorted, reverse-sorted, duplicate-heavy, and sawtooth.
//  * Cholesky jitter fallback on near-singular PSD matrices: the
//    factorization must succeed, report its jitter, and solve
//    (A + jitter·I) x = b accurately.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "gam/bspline.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "stats/quantile_sketch.h"
#include "stats/rng.h"

namespace gef {
namespace {

// ---------------------------------------------------------------------
// B-spline properties.

struct BSplineConfig {
  double lo;
  double hi;
  int num_basis;
  int degree;
};

BSplineConfig RandomConfig(Rng* rng) {
  BSplineConfig config;
  config.degree = 1 + static_cast<int>(rng->UniformInt(3));  // 1..3
  config.num_basis =
      config.degree + 1 + static_cast<int>(rng->UniformInt(20));
  config.lo = rng->Uniform(-10.0, 10.0);
  config.hi = config.lo + rng->Uniform(0.5, 20.0);
  return config;
}

TEST(BSplinePropertyTest, PartitionOfUnityAndLocalSupport) {
  Rng rng(7001);
  for (int trial = 0; trial < 200; ++trial) {
    BSplineConfig config = RandomConfig(&rng);
    BSplineBasis basis(config.lo, config.hi, config.num_basis,
                       config.degree);
    ASSERT_EQ(basis.num_basis(), config.num_basis);
    std::vector<double> values(config.num_basis);
    for (int probe = 0; probe < 8; ++probe) {
      double x = rng.Uniform(config.lo, config.hi);
      basis.Evaluate(x, values.data());
      double sum = 0.0;
      int active = 0;
      for (double v : values) {
        EXPECT_GE(v, 0.0) << "trial " << trial << " x=" << x;
        sum += v;
        if (v > 1e-12) ++active;
      }
      // Partition of unity on [lo, hi].
      EXPECT_NEAR(sum, 1.0, 1e-9) << "trial " << trial << " x=" << x;
      // Local support: at most degree+1 basis functions are non-zero
      // at any point.
      EXPECT_LE(active, config.degree + 1)
          << "trial " << trial << " x=" << x;
      EXPECT_GE(active, 1) << "trial " << trial << " x=" << x;
    }
    // Clamping: outside [lo, hi] the basis evaluates as at the border.
    std::vector<double> at_lo = basis.Evaluate(config.lo);
    std::vector<double> below = basis.Evaluate(config.lo - 3.0);
    EXPECT_EQ(at_lo, below) << "trial " << trial;
  }
}

TEST(BSplinePropertyTest, FromSitesKeepsPartitionOfUnity) {
  Rng rng(7002);
  for (int trial = 0; trial < 200; ++trial) {
    size_t num_sites = 10 + rng.UniformInt(200);
    std::vector<double> sites(num_sites);
    for (double& s : sites) s = rng.Normal(0.0, 2.0);
    std::sort(sites.begin(), sites.end());
    int requested = 5 + static_cast<int>(rng.UniformInt(12));
    BSplineBasis basis = BSplineBasis::FromSites(sites, requested);
    ASSERT_GE(basis.num_basis(), 1);
    ASSERT_LE(basis.num_basis(), requested);
    std::vector<double> values(basis.num_basis());
    for (int probe = 0; probe < 5; ++probe) {
      double x = rng.Uniform(sites.front(), sites.back());
      basis.Evaluate(x, values.data());
      double sum = 0.0;
      for (double v : values) {
        EXPECT_GE(v, 0.0);
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9)
          << "trial " << trial << " x=" << x;
    }
  }
}

TEST(BSplinePropertyTest, DerivativeConsistencyOfRandomCurves) {
  // A random spline curve s(x) = Σ c_i B_i(x) must have consistent
  // central differences: halving h changes the estimate by O(h²) for
  // the C¹ (degree ≥ 2) bases. Also, because Σ B_i ≡ 1, the summed
  // basis derivative is exactly zero.
  Rng rng(7003);
  int checked = 0;
  while (checked < 200) {
    BSplineConfig config = RandomConfig(&rng);
    if (config.degree < 2) continue;  // degree-1 derivative is not C⁰
    ++checked;
    BSplineBasis basis(config.lo, config.hi, config.num_basis,
                       config.degree);
    std::vector<double> coeffs(config.num_basis);
    for (double& c : coeffs) c = rng.Normal(0.0, 1.0);
    double range = config.hi - config.lo;
    double h = range * 1e-4;
    auto curve = [&](double x) {
      std::vector<double> values = basis.Evaluate(x);
      double s = 0.0;
      for (int i = 0; i < config.num_basis; ++i) {
        s += coeffs[i] * values[i];
      }
      return s;
    };
    // Stay away from the clamped boundary by a few steps.
    double x = rng.Uniform(config.lo + 4.0 * h, config.hi - 4.0 * h);
    double d_h = (curve(x + h) - curve(x - h)) / (2.0 * h);
    double d_h2 =
        (curve(x + 0.5 * h) - curve(x - 0.5 * h)) / h;
    // Scale of s' is ~num_basis/range; allow a generous consistency gap
    // plus the O(h²) truncation term.
    double scale =
        1.0 + std::fabs(d_h) +
        static_cast<double>(config.num_basis) / range;
    EXPECT_LE(std::fabs(d_h - d_h2), 1e-3 * scale)
        << "degree=" << config.degree << " x=" << x;

    // Summed basis derivative: derivative of the constant 1.
    std::vector<double> up = basis.Evaluate(x + h);
    std::vector<double> down = basis.Evaluate(x - h);
    double summed = 0.0;
    for (int i = 0; i < config.num_basis; ++i) {
      summed += (up[i] - down[i]) / (2.0 * h);
    }
    EXPECT_NEAR(summed, 0.0, 1e-6) << "x=" << x;
  }
}

// ---------------------------------------------------------------------
// Quantile sketch vs exact quantiles on adversarial streams.

enum class StreamKind { kSorted, kReversed, kDuplicateHeavy, kSawtooth };

std::vector<double> MakeStream(StreamKind kind, size_t n, Rng* rng) {
  std::vector<double> stream(n);
  switch (kind) {
    case StreamKind::kSorted:
      for (size_t i = 0; i < n; ++i) {
        stream[i] = static_cast<double>(i);
      }
      break;
    case StreamKind::kReversed:
      for (size_t i = 0; i < n; ++i) {
        stream[i] = static_cast<double>(n - i);
      }
      break;
    case StreamKind::kDuplicateHeavy:
      // 8 distinct values with skewed frequencies: the worst case for
      // rank bookkeeping around ties.
      for (size_t i = 0; i < n; ++i) {
        stream[i] = static_cast<double>(rng->UniformInt(8)) *
                    static_cast<double>(rng->UniformInt(2));
      }
      break;
    case StreamKind::kSawtooth:
      for (size_t i = 0; i < n; ++i) {
        stream[i] = static_cast<double>(i % 97);
      }
      break;
  }
  return stream;
}

double RankOf(const std::vector<double>& sorted, double value) {
  return static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), value) -
      sorted.begin());
}

// Distance from `target` to the rank interval `value` covers in
// `sorted`. A duplicated value spans [rank of first copy, rank of last
// copy]; any target inside that interval is an exact answer, so only
// the distance outside it counts against the ε bound.
double RankGapToTarget(const std::vector<double>& sorted, double value,
                       double target) {
  double rank_hi = RankOf(sorted, value);
  double rank_lo = static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), value) -
      sorted.begin());
  if (target < rank_lo) return rank_lo - target;
  if (target > rank_hi) return target - rank_hi;
  return 0.0;
}

class AdversarialSketchTest
    : public ::testing::TestWithParam<StreamKind> {};

TEST_P(AdversarialSketchTest, RankErrorWithinBoundOnAdversarialStream) {
  const double epsilon = 0.01;
  const size_t n = 20000;
  Rng rng(7100);
  std::vector<double> data = MakeStream(GetParam(), n, &rng);
  QuantileSketch sketch(epsilon);
  for (double v : data) sketch.Add(v);
  EXPECT_EQ(sketch.count(), n);
  // Compression must hold even on sorted / duplicate-heavy input.
  EXPECT_LT(sketch.size(), n / 4);

  std::sort(data.begin(), data.end());
  for (double q :
       {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double estimate = sketch.Quantile(q);
    double target = q * static_cast<double>(n);
    EXPECT_LE(RankGapToTarget(data, estimate, target),
              2.0 * epsilon * static_cast<double>(n) + 2.0)
        << "q = " << q << " estimate = " << estimate;
  }

  // InnerQuantiles (the K-Quantile sampling domain) lands within the
  // same rank band of each target level.
  const int k = 15;
  std::vector<double> approx = sketch.InnerQuantiles(k);
  ASSERT_EQ(approx.size(), static_cast<size_t>(k));
  EXPECT_TRUE(std::is_sorted(approx.begin(), approx.end()));
  for (int i = 0; i < k; ++i) {
    double target = static_cast<double>(i + 1) /
                    static_cast<double>(k + 1) *
                    static_cast<double>(n);
    EXPECT_LE(RankGapToTarget(data, approx[i], target),
              2.0 * epsilon * static_cast<double>(n) + 2.0)
        << "inner quantile " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, AdversarialSketchTest,
    ::testing::Values(StreamKind::kSorted, StreamKind::kReversed,
                      StreamKind::kDuplicateHeavy,
                      StreamKind::kSawtooth));

// ---------------------------------------------------------------------
// Cholesky jitter fallback on near-singular PSD matrices.

// Rank-deficient PSD matrix A = B Bᵀ with B ∈ R^{n×r}, r < n.
Matrix RandomRankDeficientPsd(size_t n, size_t rank, Rng* rng) {
  Matrix b(n, rank);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < rank; ++j) {
      b(i, j) = rng->Normal(0.0, 1.0);
    }
  }
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < rank; ++k) dot += b(i, k) * b(j, k);
      a(i, j) = dot;
    }
  }
  return a;
}

TEST(CholeskyPropertyTest, JitterFallbackSolvesNearSingularPsd) {
  Rng rng(7200);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = 4 + rng.UniformInt(9);          // 4..12
    size_t rank = 1 + rng.UniformInt(n - 1);   // 1..n-1: singular
    Matrix a = RandomRankDeficientPsd(n, rank, &rng);

    auto chol = Cholesky::Factorize(a);
    ASSERT_TRUE(chol.has_value())
        << "trial " << trial << " n=" << n << " rank=" << rank;
    // A is exactly singular, so the fallback must have added jitter
    // (up to floating-point luck, which never makes it negative).
    EXPECT_GE(chol->jitter(), 0.0);

    // What was factorized is A + jitter·I: the solve must satisfy it.
    Vector x_true(n);
    for (double& v : x_true) v = rng.Normal(0.0, 1.0);
    Matrix a_jittered = a;
    for (size_t i = 0; i < n; ++i) {
      a_jittered(i, i) += chol->jitter();
    }
    Vector rhs = MatVec(a_jittered, x_true);
    Vector x = chol->Solve(rhs);
    Vector reconstructed = MatVec(a_jittered, x);
    double residual = 0.0;
    double scale = 1.0 + Norm(rhs);
    for (size_t i = 0; i < n; ++i) {
      residual = std::max(residual,
                          std::fabs(reconstructed[i] - rhs[i]));
    }
    EXPECT_LE(residual, 1e-6 * scale)
        << "trial " << trial << " n=" << n << " rank=" << rank
        << " jitter=" << chol->jitter();
  }
}

TEST(CholeskyPropertyTest, WellConditionedSpdNeedsNoJitter) {
  Rng rng(7201);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 3 + rng.UniformInt(8);
    Matrix a = RandomRankDeficientPsd(n, n, &rng);
    // Strong diagonal dominance: comfortably positive definite.
    for (size_t i = 0; i < n; ++i) {
      a(i, i) += static_cast<double>(n);
    }
    auto chol = Cholesky::Factorize(a);
    ASSERT_TRUE(chol.has_value()) << "trial " << trial;
    EXPECT_DOUBLE_EQ(chol->jitter(), 0.0) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gef
