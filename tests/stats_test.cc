// Tests for the stats toolkit: RNG determinism and distribution sanity,
// quantiles, 1-D k-means, KDE, Welch's t-test and evaluation metrics.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/kde.h"
#include "stats/kmeans1d.h"
#include "stats/metrics.h"
#include "stats/quantile.h"
#include "stats/rng.h"
#include "stats/welch.h"

namespace gef {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double z = rng.Normal();
    sum += z;
    sum2 += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(12);
  auto perm = rng.Permutation(100);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(14);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ForkedGeneratorIsIndependent) {
  Rng a(15);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(DescriptiveTest, MeanVarianceStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Min(v), 2.0);
  EXPECT_DOUBLE_EQ(Max(v), 9.0);
}

TEST(DescriptiveTest, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0.0);
}

TEST(DescriptiveTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenRanks) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, InnerQuantilesAreSortedAndInRange) {
  std::vector<double> v;
  Rng rng(20);
  for (int i = 0; i < 500; ++i) v.push_back(rng.Normal());
  auto q = InnerQuantiles(v, 9);
  ASSERT_EQ(q.size(), 9u);
  EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
  std::sort(v.begin(), v.end());
  EXPECT_GE(q.front(), v.front());
  EXPECT_LE(q.back(), v.back());
}

TEST(KMeans1dTest, SeparatedClustersFound) {
  std::vector<double> values;
  Rng rng(21);
  for (int i = 0; i < 100; ++i) values.push_back(rng.Normal(0.0, 0.1));
  for (int i = 0; i < 100; ++i) values.push_back(rng.Normal(10.0, 0.1));
  auto result = KMeans1d(values, 2, &rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  EXPECT_NEAR(result.centroids[0], 0.0, 0.2);
  EXPECT_NEAR(result.centroids[1], 10.0, 0.2);
}

TEST(KMeans1dTest, FewDistinctValuesReducesK) {
  std::vector<double> values = {1.0, 1.0, 2.0, 2.0, 2.0};
  Rng rng(22);
  auto result = KMeans1d(values, 10, &rng);
  ASSERT_EQ(result.centroids.size(), 2u);  // k = min(|V|, K) = 2
  EXPECT_DOUBLE_EQ(result.centroids[0], 1.0);
  EXPECT_DOUBLE_EQ(result.centroids[1], 2.0);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeans1dTest, CentroidsSortedAndAssignmentsConsistent) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.Uniform());
  auto result = KMeans1d(values, 5, &rng);
  EXPECT_TRUE(std::is_sorted(result.centroids.begin(),
                             result.centroids.end()));
  ASSERT_EQ(result.assignments.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    int assigned = result.assignments[i];
    double d_assigned = std::fabs(values[i] - result.centroids[assigned]);
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      EXPECT_LE(d_assigned,
                std::fabs(values[i] - result.centroids[c]) + 1e-12);
    }
  }
}

TEST(KdeTest, DensityIntegratesToApproximatelyOne) {
  Rng rng(24);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.Normal());
  GaussianKde kde(sample);
  // Trapezoid over a wide interval.
  std::vector<double> xs, ds;
  kde.EvaluateGrid(-6, 6, 500, &xs, &ds);
  double integral = 0.0;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    integral += 0.5 * (ds[i] + ds[i + 1]) * (xs[i + 1] - xs[i]);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, DensityPeaksNearTheData) {
  GaussianKde kde({1.0, 1.1, 0.9, 1.0}, 0.2);
  EXPECT_GT(kde.Density(1.0), kde.Density(3.0));
  EXPECT_GT(kde.Density(1.0), kde.Density(-1.0));
}

TEST(KdeTest, DegenerateSampleGetsPositiveBandwidth) {
  GaussianKde kde({2.0, 2.0, 2.0});
  EXPECT_GT(kde.bandwidth(), 0.0);
  EXPECT_GT(kde.Density(2.0), 0.0);
}

TEST(WelchTest, IdenticalSamplesGiveHighPValue) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  auto result = WelchTTest(a, a);
  EXPECT_NEAR(result.t_statistic, 0.0, 1e-12);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(WelchTest, SeparatedSamplesGiveLowPValue) {
  Rng rng(25);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.Normal(0.0, 1.0));
    b.push_back(rng.Normal(3.0, 1.0));
  }
  auto result = WelchTTest(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_LT(result.t_statistic, 0.0);  // mean(a) < mean(b)
}

TEST(WelchTest, SameMeanDifferentVarianceNotSignificant) {
  Rng rng(26);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.Normal(0.0, 0.5));
    b.push_back(rng.Normal(0.0, 3.0));
  }
  auto result = WelchTTest(a, b);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(WelchTest, DegreesOfFreedomWithinBounds) {
  Rng rng(27);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) a.push_back(rng.Normal());
  for (int i = 0; i < 40; ++i) b.push_back(rng.Normal());
  auto result = WelchTTest(a, b);
  EXPECT_GE(result.degrees_of_freedom, 29.0 - 1e9);  // > min(n)-1 region
  EXPECT_LE(result.degrees_of_freedom, 68.0 + 1e-9);  // <= na+nb-2
}

TEST(StudentTCdfTest, SymmetryAndLimits) {
  EXPECT_NEAR(StudentTCdf(0.0, 10.0), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(100.0, 10.0), 1.0, 1e-6);
  EXPECT_NEAR(StudentTCdf(-100.0, 10.0), 0.0, 1e-6);
  EXPECT_NEAR(StudentTCdf(1.5, 8.0) + StudentTCdf(-1.5, 8.0), 1.0, 1e-10);
}

TEST(StudentTCdfTest, MatchesKnownValue) {
  // t = 2.228, df = 10 is the 97.5% quantile of t_10.
  EXPECT_NEAR(StudentTCdf(2.228, 10.0), 0.975, 1e-3);
}

TEST(IncompleteBetaTest, Endpoints) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(MetricsTest, RmseOfExactPredictionsIsZero) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(MetricsTest, RmseKnownValue) {
  EXPECT_NEAR(Rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
}

TEST(MetricsTest, MaeKnownValue) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({0, 0}, {3, -4}), 3.5);
}

TEST(MetricsTest, RSquaredPerfectAndMean) {
  std::vector<double> targets = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RSquared(targets, targets), 1.0);
  std::vector<double> mean_only = {2.5, 2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(RSquared(mean_only, targets), 0.0);
}

TEST(MetricsTest, RSquaredCanBeNegative) {
  EXPECT_LT(RSquared({10, 10, 10}, {1, 2, 3}), 0.0);
}

TEST(MetricsTest, AveragePrecisionPerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({true, true, false, false}), 1.0);
}

TEST(MetricsTest, AveragePrecisionWorstRanking) {
  // 2 relevant out of 4, ranked last: AP = (1/3 + 2/4) / 2.
  EXPECT_NEAR(AveragePrecision({false, false, true, true}),
              (1.0 / 3.0 + 0.5) / 2.0, 1e-12);
}

TEST(MetricsTest, AveragePrecisionNoRelevantIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({false, false}), 0.0);
}

TEST(MetricsTest, AccuracyThresholdsAtHalf) {
  EXPECT_DOUBLE_EQ(Accuracy({0.9, 0.2, 0.6, 0.4}, {1, 0, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy({0.9, 0.2}, {1, 0}), 1.0);
}

TEST(MetricsTest, LogLossPerfectAndClamped) {
  EXPECT_NEAR(LogLoss({1.0, 0.0}, {1, 0}), 0.0, 1e-9);
  // Confidently wrong prediction is heavily penalized but finite.
  double loss = LogLoss({0.0}, {1});
  EXPECT_GT(loss, 10.0);
  EXPECT_TRUE(std::isfinite(loss));
}

}  // namespace
}  // namespace gef
