// Tests for binning (BinMapper / BinnedData) and the leaf-wise grower.

#include <cmath>

#include <gtest/gtest.h>

#include "forest/grower.h"
#include "stats/rng.h"

namespace gef {
namespace {

Dataset LinearDataset(size_t n, Rng* rng) {
  Dataset d(std::vector<std::string>{"x", "noise"});
  for (size_t i = 0; i < n; ++i) {
    double x = rng->Uniform();
    d.AppendRow({x, rng->Uniform()}, 3.0 * x);
  }
  return d;
}

TEST(BinMapperTest, FewDistinctValuesGetOneBinEach) {
  Dataset d(std::vector<std::string>{"x"});
  for (double v : {1.0, 2.0, 3.0, 1.0, 2.0}) d.AppendRow({v}, 0.0);
  BinMapper mapper(d, 255);
  EXPECT_EQ(mapper.NumBins(0), 3);
  // Boundaries at midpoints 1.5 and 2.5.
  EXPECT_DOUBLE_EQ(mapper.UpperBoundary(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(mapper.UpperBoundary(0, 1), 2.5);
  EXPECT_EQ(mapper.BinFor(0, 1.0), 0);
  EXPECT_EQ(mapper.BinFor(0, 1.5), 0);  // boundary goes left (<=)
  EXPECT_EQ(mapper.BinFor(0, 1.6), 1);
  EXPECT_EQ(mapper.BinFor(0, 99.0), 2);
}

TEST(BinMapperTest, ManyValuesRespectMaxBins) {
  Rng rng(61);
  Dataset d(std::vector<std::string>{"x"});
  for (int i = 0; i < 5000; ++i) d.AppendRow({rng.Normal()}, 0.0);
  BinMapper mapper(d, 64);
  EXPECT_LE(mapper.NumBins(0), 64);
  EXPECT_GE(mapper.NumBins(0), 32);  // should not collapse
  // Boundaries are strictly increasing.
  const auto& bounds = mapper.boundaries(0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(BinMapperTest, ConstantFeatureHasSingleBin) {
  Dataset d(std::vector<std::string>{"x"});
  for (int i = 0; i < 10; ++i) d.AppendRow({5.0}, 0.0);
  BinMapper mapper(d, 255);
  EXPECT_EQ(mapper.NumBins(0), 1);
}

TEST(BinnedDataTest, BinsMatchMapper) {
  Rng rng(62);
  Dataset d = LinearDataset(200, &rng);
  BinMapper mapper(d, 32);
  BinnedData binned(d, mapper);
  EXPECT_EQ(binned.num_rows(), 200u);
  EXPECT_EQ(binned.num_features(), 2u);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(binned.Bin(i, 0), mapper.BinFor(0, d.Get(i, 0)));
  }
}

class GrowerFixture : public ::testing::Test {
 protected:
  // Grows a regression tree against targets via g = score - y at score 0,
  // i.e. g = -y, h = 1 (leaf values become shrunken leaf means).
  Tree GrowOn(const Dataset& d, const GrowerConfig& config) {
    BinMapper mapper(d, 255);
    BinnedData binned(d, mapper);
    TreeGrower grower(binned, mapper, config);
    std::vector<double> g(d.num_rows()), h(d.num_rows(), 1.0);
    for (size_t i = 0; i < d.num_rows(); ++i) g[i] = -d.target(i);
    std::vector<int> rows(d.num_rows());
    for (size_t i = 0; i < d.num_rows(); ++i) rows[i] = static_cast<int>(i);
    Rng rng(63);
    return grower.Grow(g, h, rows, &rng);
  }
};

TEST_F(GrowerFixture, SplitsOnTheInformativeFeature) {
  Rng rng(64);
  Dataset d = LinearDataset(500, &rng);
  GrowerConfig config;
  config.num_leaves = 2;
  config.lambda_l2 = 0.0;
  config.min_samples_leaf = 10;
  Tree tree = GrowOn(d, config);
  ASSERT_EQ(tree.num_leaves(), 2u);
  EXPECT_EQ(tree.node(0).feature, 0);  // x, not noise
  EXPECT_GT(tree.node(0).gain, 0.0);
}

TEST_F(GrowerFixture, RespectsNumLeaves) {
  Rng rng(65);
  Dataset d = LinearDataset(1000, &rng);
  GrowerConfig config;
  config.num_leaves = 7;
  config.min_samples_leaf = 5;
  Tree tree = GrowOn(d, config);
  EXPECT_LE(tree.num_leaves(), 7u);
  EXPECT_GE(tree.num_leaves(), 2u);
  EXPECT_TRUE(tree.IsWellFormed());
}

TEST_F(GrowerFixture, RespectsMinSamplesLeaf) {
  Rng rng(66);
  Dataset d = LinearDataset(100, &rng);
  GrowerConfig config;
  config.num_leaves = 32;
  config.min_samples_leaf = 20;
  Tree tree = GrowOn(d, config);
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf()) {
      EXPECT_GE(node.count, 20);
    }
  }
}

TEST_F(GrowerFixture, LeafValuesAreLeafMeansWithoutRegularization) {
  // Step function: y = 0 for x <= 0.5, y = 10 otherwise.
  Dataset d(std::vector<std::string>{"x"});
  Rng rng(67);
  for (int i = 0; i < 400; ++i) {
    double x = rng.Uniform();
    d.AppendRow({x}, x <= 0.5 ? 0.0 : 10.0);
  }
  GrowerConfig config;
  config.num_leaves = 2;
  config.lambda_l2 = 0.0;
  config.min_samples_leaf = 10;
  Tree tree = GrowOn(d, config);
  ASSERT_EQ(tree.num_leaves(), 2u);
  EXPECT_NEAR(tree.node(0).threshold, 0.5, 0.05);
  EXPECT_NEAR(tree.Predict({0.1}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({0.9}), 10.0, 1e-9);
}

TEST_F(GrowerFixture, NoSplitOnPureTargets) {
  Dataset d(std::vector<std::string>{"x"});
  Rng rng(68);
  for (int i = 0; i < 100; ++i) d.AppendRow({rng.Uniform()}, 5.0);
  GrowerConfig config;
  config.num_leaves = 8;
  config.lambda_l2 = 0.0;
  Tree tree = GrowOn(d, config);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_NEAR(tree.Predict({0.3}), 5.0, 1e-9);
}

TEST_F(GrowerFixture, GainDecreasesDownTheTree) {
  Rng rng(69);
  Dataset d(std::vector<std::string>{"x"});
  for (int i = 0; i < 2000; ++i) {
    double x = rng.Uniform();
    d.AppendRow({x}, std::sin(6.0 * x));
  }
  GrowerConfig config;
  config.num_leaves = 8;
  config.min_samples_leaf = 10;
  Tree tree = GrowOn(d, config);
  // The root's gain is the globally best first split; leaf-wise growth
  // guarantees every later split had gain <= earlier best splits at the
  // moment of expansion, and in particular <= root gain.
  double root_gain = tree.node(0).gain;
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_LE(node.gain, root_gain + 1e-9);
    }
  }
}

TEST_F(GrowerFixture, BootstrapRowsWithDuplicatesWork) {
  Rng rng(70);
  Dataset d = LinearDataset(100, &rng);
  BinMapper mapper(d, 255);
  BinnedData binned(d, mapper);
  GrowerConfig config;
  config.num_leaves = 4;
  config.min_samples_leaf = 5;
  TreeGrower grower(binned, mapper, config);
  std::vector<double> g(100), h(100, 1.0);
  for (size_t i = 0; i < 100; ++i) g[i] = -d.target(i);
  // Bootstrap: sample rows with replacement.
  std::vector<int> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(static_cast<int>(rng.UniformInt(100)));
  }
  Tree tree = grower.Grow(g, h, rows, &rng);
  EXPECT_TRUE(tree.IsWellFormed());
  EXPECT_GE(tree.num_leaves(), 1u);
}

TEST_F(GrowerFixture, MinGainBlocksMarginalSplits) {
  // Weak signal: with a huge min_gain the tree must stay a stump.
  Rng rng(72);
  Dataset d(std::vector<std::string>{"x"});
  for (int i = 0; i < 300; ++i) {
    d.AppendRow({rng.Uniform()}, 0.01 * rng.Uniform());
  }
  GrowerConfig config;
  config.num_leaves = 8;
  config.min_gain = 1e9;
  Tree tree = GrowOn(d, config);
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST_F(GrowerFixture, LambdaL2ShrinksLeafValues) {
  Dataset d(std::vector<std::string>{"x"});
  Rng rng(73);
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform();
    d.AppendRow({x}, x <= 0.5 ? -1.0 : 1.0);
  }
  GrowerConfig plain;
  plain.num_leaves = 2;
  plain.lambda_l2 = 0.0;
  plain.min_samples_leaf = 10;
  GrowerConfig shrunk = plain;
  shrunk.lambda_l2 = 100.0;
  Tree tree_plain = GrowOn(d, plain);
  Tree tree_shrunk = GrowOn(d, shrunk);
  EXPECT_LT(std::fabs(tree_shrunk.Predict({0.9})),
            std::fabs(tree_plain.Predict({0.9})));
  EXPECT_GT(std::fabs(tree_plain.Predict({0.9})), 0.9);
}

TEST_F(GrowerFixture, ConstantFeatureNeverSplit) {
  Rng rng(74);
  Dataset d(std::vector<std::string>{"constant", "x"});
  for (int i = 0; i < 300; ++i) {
    double x = rng.Uniform();
    d.AppendRow({7.0, x}, 2.0 * x);
  }
  GrowerConfig config;
  config.num_leaves = 8;
  config.min_samples_leaf = 10;
  Tree tree = GrowOn(d, config);
  for (const TreeNode& node : tree.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_EQ(node.feature, 1);
    }
  }
}

TEST_F(GrowerFixture, FeatureFractionRestrictsFeatures) {
  // With feature_fraction ~ 1/2 and 2 features, some trees must use the
  // noise feature only — giving single-leaf trees when noise is useless.
  Rng rng(71);
  Dataset d = LinearDataset(300, &rng);
  BinMapper mapper(d, 255);
  BinnedData binned(d, mapper);
  GrowerConfig config;
  config.num_leaves = 4;
  config.feature_fraction = 0.5;
  config.min_samples_leaf = 10;
  TreeGrower grower(binned, mapper, config);
  std::vector<double> g(300), h(300, 1.0);
  for (size_t i = 0; i < 300; ++i) g[i] = -d.target(i);
  std::vector<int> rows(300);
  for (int i = 0; i < 300; ++i) rows[i] = i;

  int used_noise_only = 0;
  for (int t = 0; t < 20; ++t) {
    Tree tree = grower.Grow(g, h, rows, &rng);
    bool uses_x = false;
    for (const TreeNode& node : tree.nodes()) {
      if (!node.is_leaf() && node.feature == 0) uses_x = true;
    }
    if (!uses_x) ++used_noise_only;
  }
  EXPECT_GT(used_noise_only, 0);  // some trees were denied feature 0
}

}  // namespace
}  // namespace gef
