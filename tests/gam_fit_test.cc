// Tests for GAM fitting: recovery of additive ground truths, the logit
// link, GCV behaviour, credible intervals, term contributions and
// importances.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "gam/gam.h"
#include "stats/descriptive.h"
#include "stats/metrics.h"
#include "stats/rng.h"

namespace gef {
namespace {

TermList SplineTerms(int num_features, int basis = 12) {
  TermList terms;
  terms.push_back(std::make_unique<InterceptTerm>());
  for (int f = 0; f < num_features; ++f) {
    terms.push_back(std::make_unique<SplineTerm>(f, 0.0, 1.0, basis));
  }
  return terms;
}

Dataset AdditiveSineData(size_t n, Rng* rng, double noise = 0.05) {
  // y = 3 + sin(2πx0) + 2·x1² with noise.
  Dataset d(std::vector<std::string>{"x0", "x1"});
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng->Uniform();
    double x1 = rng->Uniform();
    double y = 3.0 + std::sin(2.0 * std::numbers::pi * x0) +
               2.0 * x1 * x1 + rng->Normal(0.0, noise);
    d.AppendRow({x0, x1}, y);
  }
  return d;
}

TEST(GamFitTest, RecoversAdditiveFunction) {
  Rng rng(121);
  Dataset data = AdditiveSineData(2000, &rng);
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), data, GamConfig{}));
  double r2 = RSquared(gam.PredictBatch(data), data.targets());
  EXPECT_GT(r2, 0.98);
}

TEST(GamFitTest, InterceptAbsorbsTheMean) {
  Rng rng(122);
  Dataset data = AdditiveSineData(2000, &rng);
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), data, GamConfig{}));
  // Components are centered, so the intercept is close to mean(y):
  // 3 + E[sin] (=0) + 2·E[x²] (=2/3).
  EXPECT_NEAR(gam.intercept(), Mean(data.targets()), 0.05);
}

TEST(GamFitTest, TermContributionsSumToPrediction) {
  Rng rng(123);
  Dataset data = AdditiveSineData(800, &rng);
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), data, GamConfig{}));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    double total = gam.intercept();
    for (size_t t = 0; t < gam.num_terms(); ++t) {
      if (gam.term(t).type() != TermType::kIntercept) {
        total += gam.TermContribution(t, x);
      }
    }
    EXPECT_NEAR(total, gam.PredictRaw(x), 1e-9);
  }
}

TEST(GamFitTest, ComponentsMatchGroundTruthShape) {
  Rng rng(124);
  Dataset data = AdditiveSineData(3000, &rng);
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), data, GamConfig{}));
  // Correlate the fitted s(x0) with sin(2πx) over a grid.
  std::vector<double> fitted, truth;
  for (double x = 0.02; x < 1.0; x += 0.02) {
    fitted.push_back(gam.TermContribution(1, {x, 0.5}));
    truth.push_back(std::sin(2.0 * std::numbers::pi * x));
  }
  EXPECT_GT(PearsonCorrelation(fitted, truth), 0.99);
}

TEST(GamFitTest, HeavySmoothingFlattensComponents) {
  Rng rng(125);
  Dataset data = AdditiveSineData(1000, &rng);
  GamConfig smooth;
  smooth.lambda_grid = {1e7};
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), data, smooth));
  // With a huge λ the spline is nearly affine in its coefficients: the
  // sine component cannot be tracked, so the fit degrades.
  double r2 = RSquared(gam.PredictBatch(data), data.targets());
  EXPECT_LT(r2, 0.9);
  EXPECT_LT(gam.edof(), 8.0);
}

TEST(GamFitTest, GcvPrefersModerateLambdaOnNoisyData) {
  Rng rng(126);
  Dataset data = AdditiveSineData(400, &rng, /*noise=*/0.5);
  GamConfig config;
  config.lambda_grid = {1e-6, 1e-2, 1.0, 1e2, 1e6};
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2, 20), data, config));
  EXPECT_GT(gam.lambda(), 1e-6);
  EXPECT_LT(gam.lambda(), 1e6);
}

TEST(GamFitTest, EdofDecreasesWithLambda) {
  Rng rng(127);
  Dataset data = AdditiveSineData(600, &rng);
  GamConfig loose, tight;
  loose.lambda_grid = {1e-4};
  tight.lambda_grid = {1e4};
  Gam gam_loose, gam_tight;
  ASSERT_TRUE(gam_loose.Fit(SplineTerms(2), data, loose));
  ASSERT_TRUE(gam_tight.Fit(SplineTerms(2), data, tight));
  EXPECT_GT(gam_loose.edof(), gam_tight.edof());
}

TEST(GamFitTest, CredibleIntervalContainsEstimateAndHasPositiveWidth) {
  Rng rng(128);
  Dataset data = AdditiveSineData(500, &rng, 0.3);
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), data, GamConfig{}));
  for (double x : {0.1, 0.5, 0.9}) {
    EffectInterval effect = gam.TermEffect(1, {x, 0.5});
    EXPECT_LE(effect.lower, effect.value);
    EXPECT_GE(effect.upper, effect.value);
    EXPECT_GT(effect.upper - effect.lower, 0.0);
  }
}

TEST(GamFitTest, IntervalWidensWithNoise) {
  Rng rng(129);
  Dataset quiet = AdditiveSineData(800, &rng, 0.01);
  Dataset loud = AdditiveSineData(800, &rng, 1.0);
  GamConfig config;
  config.lambda_grid = {1.0};
  Gam gam_quiet, gam_loud;
  ASSERT_TRUE(gam_quiet.Fit(SplineTerms(2), quiet, config));
  ASSERT_TRUE(gam_loud.Fit(SplineTerms(2), loud, config));
  EffectInterval eq = gam_quiet.TermEffect(1, {0.5, 0.5});
  EffectInterval el = gam_loud.TermEffect(1, {0.5, 0.5});
  EXPECT_GT(el.upper - el.lower, eq.upper - eq.lower);
}

TEST(GamFitTest, TermImportanceRanksStrongerComponentHigher) {
  Rng rng(130);
  // x0 has a large-amplitude effect, x1 a tiny one.
  Dataset d(std::vector<std::string>{"x0", "x1"});
  for (int i = 0; i < 1500; ++i) {
    double x0 = rng.Uniform(), x1 = rng.Uniform();
    d.AppendRow({x0, x1},
                5.0 * std::sin(4.0 * x0) + 0.1 * x1 +
                    rng.Normal(0.0, 0.05));
  }
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), d, GamConfig{}));
  const auto& importance = gam.term_importances();
  EXPECT_GT(importance[1], 5.0 * importance[2]);
}

TEST(GamFitTest, FactorTermFitsGroupMeans) {
  Rng rng(131);
  Dataset d(std::vector<std::string>{"group"});
  for (int i = 0; i < 900; ++i) {
    double g = static_cast<double>(rng.UniformInt(3));
    double y = (g == 0 ? 1.0 : (g == 1 ? 5.0 : -2.0)) +
               rng.Normal(0.0, 0.1);
    d.AppendRow({g}, y);
  }
  TermList terms;
  terms.push_back(std::make_unique<InterceptTerm>());
  terms.push_back(std::make_unique<FactorTerm>(
      0, std::vector<double>{0.0, 1.0, 2.0}));
  GamConfig config;
  config.lambda_grid = {1e-3};
  Gam gam;
  ASSERT_TRUE(gam.Fit(std::move(terms), d, config));
  EXPECT_NEAR(gam.Predict({0.0}), 1.0, 0.1);
  EXPECT_NEAR(gam.Predict({1.0}), 5.0, 0.1);
  EXPECT_NEAR(gam.Predict({2.0}), -2.0, 0.1);
}

TEST(GamFitTest, TensorTermCapturesInteraction) {
  Rng rng(132);
  // Pure multiplicative interaction: additive-only model must underfit.
  Dataset d(std::vector<std::string>{"a", "b"});
  for (int i = 0; i < 2500; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    d.AppendRow({a, b}, 4.0 * (a - 0.5) * (b - 0.5) +
                            rng.Normal(0.0, 0.02));
  }

  Gam additive;
  ASSERT_TRUE(additive.Fit(SplineTerms(2), d, GamConfig{}));
  double r2_additive = RSquared(additive.PredictBatch(d), d.targets());

  TermList with_tensor = SplineTerms(2);
  with_tensor.push_back(
      std::make_unique<TensorTerm>(0, 0.0, 1.0, 1, 0.0, 1.0, 6));
  Gam interaction;
  ASSERT_TRUE(interaction.Fit(std::move(with_tensor), d, GamConfig{}));
  double r2_tensor = RSquared(interaction.PredictBatch(d), d.targets());

  EXPECT_LT(r2_additive, 0.3);
  EXPECT_GT(r2_tensor, 0.9);
}

TEST(GamFitTest, LogitLinkFitsProbabilities) {
  Rng rng(133);
  Dataset d(std::vector<std::string>{"x"});
  for (int i = 0; i < 3000; ++i) {
    double x = rng.Uniform();
    double p = 1.0 / (1.0 + std::exp(-8.0 * (x - 0.5)));
    d.AppendRow({x}, rng.Uniform() < p ? 1.0 : 0.0);
  }
  TermList terms;
  terms.push_back(std::make_unique<InterceptTerm>());
  terms.push_back(std::make_unique<SplineTerm>(0, 0.0, 1.0, 10));
  GamConfig config;
  config.link = LinkType::kLogit;
  Gam gam;
  ASSERT_TRUE(gam.Fit(std::move(terms), d, config));
  EXPECT_LT(gam.Predict({0.1}), 0.15);
  EXPECT_GT(gam.Predict({0.9}), 0.85);
  EXPECT_NEAR(gam.Predict({0.5}), 0.5, 0.12);
  // Predictions are probabilities.
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    double p = gam.Predict({x});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(GamFitTest, LogitLinkOnSoftLabels) {
  // GEF fits the GAM on forest *probabilities* — continuous y in (0,1).
  Rng rng(134);
  Dataset d(std::vector<std::string>{"x"});
  for (int i = 0; i < 1500; ++i) {
    double x = rng.Uniform();
    double p = 1.0 / (1.0 + std::exp(-6.0 * (x - 0.5)));
    d.AppendRow({x}, p);
  }
  TermList terms;
  terms.push_back(std::make_unique<InterceptTerm>());
  terms.push_back(std::make_unique<SplineTerm>(0, 0.0, 1.0, 10));
  GamConfig config;
  config.link = LinkType::kLogit;
  Gam gam;
  ASSERT_TRUE(gam.Fit(std::move(terms), d, config));
  for (double x : {0.2, 0.5, 0.8}) {
    double expected = 1.0 / (1.0 + std::exp(-6.0 * (x - 0.5)));
    EXPECT_NEAR(gam.Predict({x}), expected, 0.05);
  }
}

TEST(GamFitTest, CredibleIntervalCoverageIsCalibrated) {
  // Statistical property: on repeated draws from a known additive model,
  // the 95% Bayesian interval of s(x0) at a fixed interior point should
  // contain the true (centered) component value close to 95% of the
  // time. Penalized splines make the interval approximate (Wood 2006
  // reports across-the-function coverage near nominal), so we assert a
  // generous band rather than exact calibration.
  int covered = 0;
  const int replications = 40;
  const double x_eval = 0.37;
  // True component of x0 is sin(2πx); its mean over U[0,1] is 0.
  const double truth = std::sin(2.0 * std::numbers::pi * x_eval);
  for (int rep = 0; rep < replications; ++rep) {
    Rng rng(9000 + rep);
    Dataset data = AdditiveSineData(600, &rng, 0.3);
    Gam gam;
    GamConfig config;
    config.lambda_grid = {1e-2, 1e-1, 1.0};
    ASSERT_TRUE(gam.Fit(SplineTerms(2), data, config));
    EffectInterval effect = gam.TermEffect(1, {x_eval, 0.5});
    if (truth >= effect.lower && truth <= effect.upper) ++covered;
  }
  double coverage = static_cast<double>(covered) / replications;
  EXPECT_GE(coverage, 0.70);
  EXPECT_LE(coverage, 1.0);
}

TEST(GamFitTest, PerTermLambdaNeverWorsensGcv) {
  Rng rng(135);
  Dataset data = AdditiveSineData(800, &rng, 0.3);
  GamConfig shared;
  GamConfig per_term = shared;
  per_term.per_term_lambda = true;
  Gam gam_shared, gam_per_term;
  ASSERT_TRUE(gam_shared.Fit(SplineTerms(2), data, shared));
  ASSERT_TRUE(gam_per_term.Fit(SplineTerms(2), data, per_term));
  EXPECT_LE(gam_per_term.gcv_score(), gam_shared.gcv_score() + 1e-12);
}

TEST(GamFitTest, PerTermLambdaAdaptsToComponentSmoothness) {
  Rng rng(136);
  // x0 drives a very wiggly component, x1 a straight line: coordinate
  // descent should give x0 a smaller λ than x1.
  Dataset d(std::vector<std::string>{"wiggly", "straight"});
  for (int i = 0; i < 2500; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    d.AppendRow({a, b},
                std::sin(25.0 * a) + b + rng.Normal(0.0, 0.05));
  }
  GamConfig config;
  config.per_term_lambda = true;
  config.per_term_rounds = 3;
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2, 20), d, config));
  const auto& lambdas = gam.term_lambdas();
  ASSERT_EQ(lambdas.size(), 3u);  // intercept + 2 splines
  EXPECT_LT(lambdas[1], lambdas[2]);
  // And the fit is tight.
  EXPECT_GT(RSquared(gam.PredictBatch(d), d.targets()), 0.97);
}

TEST(GamFitTest, SharedLambdaVectorIsConstant) {
  Rng rng(137);
  Dataset data = AdditiveSineData(500, &rng);
  Gam gam;
  ASSERT_TRUE(gam.Fit(SplineTerms(2), data, GamConfig{}));
  const auto& lambdas = gam.term_lambdas();
  for (double l : lambdas) EXPECT_DOUBLE_EQ(l, gam.lambda());
}

TEST(GamFitDeathTest, MoreCoefficientsThanRowsAborts) {
  Dataset d(std::vector<std::string>{"x"});
  for (int i = 0; i < 5; ++i) {
    d.AppendRow({i * 0.2}, 0.0);
  }
  Gam gam;
  GamConfig config;
  EXPECT_DEATH(gam.Fit(SplineTerms(1, 20), d, config), "coefficients");
}

TEST(GamFitDeathTest, PredictBeforeFitAborts) {
  Gam gam;
  EXPECT_DEATH(gam.PredictRaw({0.5}), "unfitted");
}

}  // namespace
}  // namespace gef
