// Tests for partial dependence, ICE curves and the H-statistic.

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "explain/hstat.h"
#include "explain/pdp.h"
#include "forest/gbdt_trainer.h"
#include "stats/descriptive.h"

namespace gef {
namespace {

Forest TrainOn(const Dataset& data, int trees = 60, int leaves = 16) {
  GbdtConfig config;
  config.num_trees = trees;
  config.num_leaves = leaves;
  config.learning_rate = 0.15;
  config.min_samples_leaf = 10;
  return TrainGbdt(data, nullptr, config).forest;
}

TEST(PdpTest, RecoversAdditiveComponentShape) {
  Rng rng(401);
  Dataset data = MakeGPrimeDataset(3000, &rng);
  Forest forest = TrainOn(data);
  std::vector<double> grid = FeatureGrid(data, 2, 30);
  std::vector<double> pd = PartialDependence1d(forest, data, 2, grid);
  // Feature x3 (index 2) is the sharp sigmoid: PD must rise by ~1 across
  // the jump at 0.5.
  EXPECT_NEAR(pd.back() - pd.front(), 1.0, 0.25);
  // Correlate with the true component.
  std::vector<double> truth;
  for (double g : grid) truth.push_back(SyntheticComponent(2, g));
  EXPECT_GT(PearsonCorrelation(pd, truth), 0.95);
}

TEST(PdpTest, FlatForUnusedFeature) {
  Rng rng(402);
  Dataset data(std::vector<std::string>{"x", "unused"});
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform();
    data.AppendRow({x, rng.Uniform()}, 2.0 * x);
  }
  Forest forest = TrainOn(data, 20, 4);
  if (forest.SplitCountImportance()[1] == 0) {
    std::vector<double> grid = FeatureGrid(data, 1, 10);
    std::vector<double> pd = PartialDependence1d(forest, data, 1, grid);
    for (size_t g = 1; g < pd.size(); ++g) {
      EXPECT_DOUBLE_EQ(pd[g], pd[0]);
    }
  }
}

TEST(PdpTest, TwoDimensionalGridShape) {
  Rng rng(403);
  Dataset data = MakeGPrimeDataset(500, &rng);
  Forest forest = TrainOn(data, 20, 8);
  std::vector<double> ga = {0.2, 0.5, 0.8};
  std::vector<double> gb = {0.3, 0.7};
  auto pd = PartialDependence2d(forest, data, 0, 1, ga, gb);
  ASSERT_EQ(pd.size(), 3u);
  ASSERT_EQ(pd[0].size(), 2u);
}

TEST(PdpTest, Pd2dConsistentWithPd1dForAdditiveModel) {
  Rng rng(404);
  Dataset data = MakeGPrimeDataset(2000, &rng);
  Forest forest = TrainOn(data);
  std::vector<double> ga = {0.25, 0.75};
  std::vector<double> gb = {0.25, 0.75};
  auto pd2 = PartialDependence2d(forest, data, 0, 1, ga, gb);
  auto pd_a = PartialDependence1d(forest, data, 0, ga);
  auto pd_b = PartialDependence1d(forest, data, 1, gb);
  // g' is additive, so PD_ab(x, y) − PD_a(x) − PD_b(y) is approximately
  // constant in (x, y).
  double c00 = pd2[0][0] - pd_a[0] - pd_b[0];
  double c11 = pd2[1][1] - pd_a[1] - pd_b[1];
  EXPECT_NEAR(c00, c11, 0.1);
}

TEST(IceTest, CurvesAverageToPd) {
  Rng rng(405);
  Dataset data = MakeGPrimeDataset(300, &rng);
  Forest forest = TrainOn(data, 20, 8);
  std::vector<double> grid = {0.2, 0.5, 0.8};
  auto ice = IceCurves(forest, data, 0, grid);
  auto pd = PartialDependence1d(forest, data, 0, grid);
  ASSERT_EQ(ice.size(), 300u);
  for (size_t g = 0; g < grid.size(); ++g) {
    double mean = 0.0;
    for (const auto& curve : ice) mean += curve[g];
    mean /= static_cast<double>(ice.size());
    EXPECT_NEAR(mean, pd[g], 1e-9);
  }
}

TEST(FeatureGridTest, SpansObservedRange) {
  Dataset d(std::vector<std::string>{"x"});
  d.AppendRow({-2.0}, 0.0);
  d.AppendRow({4.0}, 0.0);
  auto grid = FeatureGrid(d, 0, 7);
  ASSERT_EQ(grid.size(), 7u);
  EXPECT_DOUBLE_EQ(grid.front(), -2.0);
  EXPECT_DOUBLE_EQ(grid.back(), 4.0);
  EXPECT_DOUBLE_EQ(grid[3], 1.0);
}

TEST(IceHeterogeneityTest, NearZeroForAdditiveForest) {
  Rng rng(410);
  Dataset data = MakeGPrimeDataset(2500, &rng);
  Forest forest = TrainOn(data);
  Dataset background =
      data.Subset(rng.SampleWithoutReplacement(2500, 60));
  std::vector<double> grid = FeatureGrid(data, 0, 15);
  double h = IceHeterogeneity(forest, background, 0, grid);
  // Additive target: centered ICE curves coincide up to forest noise.
  EXPECT_LT(h, 0.01);
}

TEST(IceHeterogeneityTest, LargeForInteractingFeature) {
  Rng rng(411);
  // Strong multiplicative interaction on (0, 1); feature 2 additive.
  Dataset data(std::vector<std::string>{"a", "b", "c"});
  for (int i = 0; i < 2500; ++i) {
    double a = rng.Uniform(), b = rng.Uniform(), c = rng.Uniform();
    data.AppendRow({a, b, c},
                   6.0 * (a - 0.5) * (b - 0.5) + std::sin(4.0 * c));
  }
  Forest forest = TrainOn(data, 120, 16);
  Dataset background =
      data.Subset(rng.SampleWithoutReplacement(2500, 60));
  std::vector<double> grid_a = FeatureGrid(data, 0, 15);
  std::vector<double> grid_c = FeatureGrid(data, 2, 15);
  double h_interacting =
      IceHeterogeneity(forest, background, 0, grid_a);
  double h_additive = IceHeterogeneity(forest, background, 2, grid_c);
  EXPECT_GT(h_interacting, 5.0 * h_additive);
  EXPECT_GT(h_interacting, 0.05);
}

TEST(IceHeterogeneityTest, ExactlyZeroForSingleSplitTree) {
  // One split on one feature: every ICE curve is identical.
  Tree t = Tree::Stump(0.0, 10);
  t.SplitLeaf(0, 0, 0.5, 1.0, 0.0, 1.0, 5, 5);
  std::vector<Tree> trees;
  trees.push_back(std::move(t));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 2, {});
  Rng rng(412);
  Dataset background(2);
  for (int i = 0; i < 20; ++i) {
    background.AppendRow({rng.Uniform(), rng.Uniform()});
  }
  double h = IceHeterogeneity(forest, background, 0, {0.2, 0.5, 0.8});
  EXPECT_NEAR(h, 0.0, 1e-24);  // identical curves up to fp rounding
}

TEST(HStatTest, AdditiveModelHasLowH) {
  Rng rng(406);
  Dataset data = MakeGPrimeDataset(2500, &rng);
  Forest forest = TrainOn(data);
  Dataset sample = data.Subset(rng.SampleWithoutReplacement(2500, 80));
  double h = HStatistic(forest, sample, 0, 1);
  EXPECT_LT(h, 0.1);
}

TEST(HStatTest, InteractingPairHasHigherHThanAdditivePair) {
  Rng rng(407);
  // y mixes additive components on x2/x3 with a strong multiplicative
  // interaction between x0 and x1. (The paper's bump h is nearly
  // additive — its cross term is O(0.04·uv) — so a crisp ranking test
  // needs a genuinely interacting target.)
  Dataset data(std::vector<std::string>{"a", "b", "c", "d"});
  for (int i = 0; i < 2500; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    double c = rng.Uniform(), d = rng.Uniform();
    data.AppendRow({a, b, c, d},
                   6.0 * (a - 0.5) * (b - 0.5) + std::sin(4.0 * c) + d +
                       rng.Normal(0.0, 0.05));
  }
  Forest forest = TrainOn(data, 120, 16);
  Dataset sample = data.Subset(rng.SampleWithoutReplacement(2500, 80));
  double h_interacting = HStatistic(forest, sample, 0, 1);
  double h_additive = HStatistic(forest, sample, 2, 3);
  EXPECT_GT(h_interacting, 2.0 * h_additive);
}

TEST(HStatTest, SymmetricInArguments) {
  Rng rng(408);
  Dataset data = MakeGDoublePrimeDataset(800, {{0, 1}}, &rng);
  Forest forest = TrainOn(data, 30, 8);
  Dataset sample = data.Subset(rng.SampleWithoutReplacement(800, 40));
  EXPECT_NEAR(HStatistic(forest, sample, 0, 1),
              HStatistic(forest, sample, 1, 0), 1e-10);
}

TEST(HStatTest, BoundedInUnitInterval) {
  Rng rng(409);
  Dataset data = MakeGDoublePrimeDataset(600, {{2, 3}}, &rng);
  Forest forest = TrainOn(data, 30, 8);
  Dataset sample = data.Subset(rng.SampleWithoutReplacement(600, 30));
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 5; ++b) {
      double h = HStatistic(forest, sample, a, b);
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
    }
  }
}

}  // namespace
}  // namespace gef
