// Tests for the explanation evaluation module.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "forest/threshold_index.h"
#include "gef/evaluation.h"
#include "gef/sampling.h"

namespace gef {
namespace {

class EvaluationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(111);
    Dataset data = MakeGPrimeDataset(3000, &rng);
    GbdtConfig fc;
    fc.num_trees = 80;
    fc.num_leaves = 16;
    fc.learning_rate = 0.15;
    forest_ = TrainGbdt(data, nullptr, fc).forest;
    GefConfig config;
    config.num_univariate = 5;
    config.num_samples = 4000;
    config.k = 32;
    explanation_ = ExplainForest(forest_, config);
    ASSERT_NE(explanation_, nullptr);
    Rng probe_rng(112);
    probe_ = MakeGPrimeDataset(500, &probe_rng);
  }

  Forest forest_;
  std::unique_ptr<GefExplanation> explanation_;
  Dataset probe_;
};

TEST_F(EvaluationFixture, FidelityReportIsConsistent) {
  FidelityReport report =
      EvaluateFidelity(*explanation_, forest_, probe_);
  EXPECT_EQ(report.num_rows, 500u);
  EXPECT_GT(report.rmse, 0.0);
  EXPECT_LE(report.mae, report.rmse);  // MAE <= RMSE always
  EXPECT_GT(report.r2, 0.95);          // additive target: near-perfect
  EXPECT_LT(report.rmse, 0.3);
}

TEST_F(EvaluationFixture, FidelityDegradesWithFewerComponents) {
  GefConfig coarse;
  coarse.num_univariate = 1;
  coarse.num_samples = 4000;
  coarse.k = 32;
  auto weak = ExplainForest(forest_, coarse);
  ASSERT_NE(weak, nullptr);
  FidelityReport full = EvaluateFidelity(*explanation_, forest_, probe_);
  FidelityReport partial = EvaluateFidelity(*weak, forest_, probe_);
  EXPECT_GT(partial.rmse, full.rmse);
  EXPECT_LT(partial.r2, full.r2);
}

TEST_F(EvaluationFixture, ShapTrendAgreementHighOnAdditiveTarget) {
  Dataset small = probe_.Subset({0,  5,  10, 15, 20, 25, 30, 35, 40,
                                 45, 50, 55, 60, 65, 70, 75, 80, 85,
                                 90, 95});
  std::vector<double> agreement =
      ShapTrendAgreement(*explanation_, forest_, small);
  ASSERT_EQ(agreement.size(), 5u);
  for (double corr : agreement) {
    EXPECT_GT(corr, 0.8);
    EXPECT_LE(corr, 1.0 + 1e-12);
  }
}

TEST_F(EvaluationFixture, PerComponentFidelityTracksForestPd) {
  Dataset background =
      probe_.Subset({0, 7, 14, 21, 28, 35, 42, 49, 56, 63, 70, 77, 84,
                     91, 98, 105, 112, 119, 126, 133, 140, 147, 154,
                     161, 168, 175, 182, 189, 196, 203});
  auto components =
      PerComponentFidelity(*explanation_, forest_, background);
  ASSERT_EQ(components.size(), 5u);
  // g' is additive, so every component should track its PD closely.
  for (const ComponentFidelity& c : components) {
    EXPECT_GT(c.correlation, 0.95) << "feature " << c.feature;
    EXPECT_LT(c.curve_rmse, 0.15) << "feature " << c.feature;
  }
}

TEST_F(EvaluationFixture, MonotonicityDetection) {
  // x1 (index 0) drives the identity component -> monotone increasing;
  // x5 (index 4) drives 2/(x+1) -> monotone decreasing; x2 (index 1)
  // drives sin(20x) -> non-monotone.
  for (size_t i = 0; i < explanation_->selected_features.size(); ++i) {
    int feature = explanation_->selected_features[i];
    int direction =
        ComponentMonotonicity(*explanation_, i, 41, /*tolerance=*/0.02);
    if (feature == 0) {
      EXPECT_EQ(direction, 1) << "x1";
    }
    if (feature == 4) {
      EXPECT_EQ(direction, -1) << "x5";
    }
    if (feature == 1) {
      EXPECT_EQ(direction, 0) << "x2";
    }
  }
}

TEST(ThresholdSketchTest, SketchDomainsMatchExactOnTrainedForest) {
  Rng rng(115);
  Dataset data = MakeGPrimeDataset(3000, &rng);
  GbdtConfig fc;
  fc.num_trees = 60;
  fc.num_leaves = 16;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  auto sketches = CollectThresholdSketches(forest, 0.005);
  ThresholdIndex index(forest);
  ASSERT_EQ(sketches.size(), 5u);
  for (int f = 0; f < 5; ++f) {
    EXPECT_EQ(sketches[f].count(),
              index.ThresholdsWithMultiplicity(f).size());
    Rng domain_rng(116);
    auto exact = BuildSamplingDomain(
        index.ThresholdsWithMultiplicity(f),
        SamplingStrategy::kKQuantile, 10, 0.05, &domain_rng);
    auto streamed = BuildKQuantileDomainFromSketch(sketches[f], 10);
    ASSERT_EQ(streamed.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(streamed[i], exact[i], 0.03);
    }
  }
}

TEST_F(EvaluationFixture, ClassificationFidelityInProbabilitySpace) {
  Rng rng(113);
  Dataset data(std::vector<std::string>{"x1", "x2"});
  for (int i = 0; i < 2000; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    data.AppendRow({a, b}, a + b > 1.0 ? 1.0 : 0.0);
  }
  GbdtConfig fc;
  fc.objective = Objective::kBinaryClassification;
  fc.num_trees = 40;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  GefConfig config;
  config.num_univariate = 2;
  config.num_samples = 2000;
  config.k = 16;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);
  FidelityReport report = EvaluateFidelity(*explanation, forest, data);
  // Probability-space RMSE must be bounded by 1 by construction.
  EXPECT_LT(report.rmse, 1.0);
  EXPECT_GT(report.r2, 0.5);
}

}  // namespace
}  // namespace gef
