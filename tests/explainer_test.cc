// Tests for the end-to-end GEF pipeline and local explanations.

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "gef/explainer.h"
#include "gef/local_explanation.h"
#include "stats/descriptive.h"
#include "stats/metrics.h"

namespace gef {
namespace {

Forest TrainGPrimeForest(uint64_t seed = 801, size_t rows = 3000) {
  Rng rng(seed);
  Dataset data = MakeGPrimeDataset(rows, &rng);
  GbdtConfig config;
  config.num_trees = 100;
  config.num_leaves = 16;
  config.learning_rate = 0.15;
  config.min_samples_leaf = 10;
  return TrainGbdt(data, nullptr, config).forest;
}

GefConfig FastConfig() {
  GefConfig config;
  config.num_univariate = 5;
  config.num_samples = 4000;
  config.k = 32;
  config.spline_basis = 12;
  return config;
}

TEST(ExplainerTest, ProducesHighFidelitySurrogate) {
  Forest forest = TrainGPrimeForest();
  auto explanation = ExplainForest(forest, FastConfig());
  ASSERT_NE(explanation, nullptr);
  EXPECT_EQ(explanation->selected_features.size(), 5u);
  // g' is additive, so a univariate GAM should track the forest closely;
  // the forest's own output range is ~[1, 5].
  EXPECT_LT(explanation->fidelity_rmse_test, 0.25);
  EXPECT_LT(explanation->fidelity_rmse_train,
            explanation->fidelity_rmse_test * 1.5 + 0.05);
}

TEST(ExplainerTest, SelectedFeaturesOrderedByImportance) {
  Forest forest = TrainGPrimeForest();
  auto explanation = ExplainForest(forest, FastConfig());
  ASSERT_NE(explanation, nullptr);
  auto gains = forest.GainImportance();
  const auto& selected = explanation->selected_features;
  for (size_t i = 1; i < selected.size(); ++i) {
    EXPECT_GE(gains[selected[i - 1]], gains[selected[i]]);
  }
}

TEST(ExplainerTest, RespectsRequestedComponentCounts) {
  Forest forest = TrainGPrimeForest();
  GefConfig config = FastConfig();
  config.num_univariate = 3;
  config.num_bivariate = 2;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);
  EXPECT_EQ(explanation->selected_features.size(), 3u);
  EXPECT_EQ(explanation->selected_pairs.size(), 2u);
  EXPECT_EQ(explanation->univariate_term_index.size(), 3u);
  EXPECT_EQ(explanation->bivariate_term_index.size(), 2u);
  // Heredity: pair members come from F'.
  for (const auto& [a, b] : explanation->selected_pairs) {
    EXPECT_NE(std::find(explanation->selected_features.begin(),
                        explanation->selected_features.end(), a),
              explanation->selected_features.end());
    EXPECT_NE(std::find(explanation->selected_features.begin(),
                        explanation->selected_features.end(), b),
              explanation->selected_features.end());
  }
  // GAM has intercept + 3 + 2 terms.
  EXPECT_EQ(explanation->gam().num_terms(), 6u);
}

TEST(ExplainerTest, ReconstructsGeneratorComponents) {
  // The Fig 4 claim: GEF splines match the generator functions of g'.
  Forest forest = TrainGPrimeForest(802, 5000);
  GefConfig config = FastConfig();
  config.sampling = SamplingStrategy::kEquiSize;
  config.k = 64;
  config.num_samples = 8000;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);
  for (size_t i = 0; i < explanation->selected_features.size(); ++i) {
    int feature = explanation->selected_features[i];
    int term = explanation->univariate_term_index[i];
    std::vector<double> fitted, truth;
    std::vector<double> x(5, 0.5);
    for (double v = 0.05; v <= 0.95; v += 0.05) {
      x[feature] = v;
      fitted.push_back(explanation->gam().TermContribution(term, x));
      truth.push_back(SyntheticComponent(feature, v));
    }
    EXPECT_GT(PearsonCorrelation(fitted, truth), 0.9)
        << "component for x" << feature + 1;
  }
}

TEST(ExplainerTest, ClassificationForestGetsLogitGam) {
  Rng rng(803);
  Dataset data(std::vector<std::string>{"x1", "x2"});
  for (int i = 0; i < 2500; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    double p = 1.0 / (1.0 + std::exp(-10.0 * (a + b - 1.0)));
    data.AppendRow({a, b}, rng.Uniform() < p ? 1.0 : 0.0);
  }
  GbdtConfig fc;
  fc.objective = Objective::kBinaryClassification;
  fc.num_trees = 60;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;

  GefConfig config = FastConfig();
  config.num_univariate = 2;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);
  // GAM predictions are probabilities tracking the forest.
  std::vector<double> gam_p, forest_p;
  for (int i = 0; i < 50; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    gam_p.push_back(explanation->gam().Predict(x));
    forest_p.push_back(forest.Predict(x));
    EXPECT_GE(gam_p.back(), 0.0);
    EXPECT_LE(gam_p.back(), 1.0);
  }
  EXPECT_GT(PearsonCorrelation(gam_p, forest_p), 0.9);
}

TEST(ExplainerTest, CategoricalHeuristicUsesFactorTerm) {
  // A feature with 3 distinct values gets < L = 10 thresholds -> factor.
  Rng rng(804);
  Dataset data(std::vector<std::string>{"cat", "cont"});
  for (int i = 0; i < 2000; ++i) {
    double c = static_cast<double>(rng.UniformInt(3));
    double x = rng.Uniform();
    data.AppendRow({c, x}, 2.0 * c + std::sin(6.0 * x));
  }
  GbdtConfig fc;
  fc.num_trees = 40;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  GefConfig config = FastConfig();
  config.num_univariate = 2;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);
  for (size_t i = 0; i < explanation->selected_features.size(); ++i) {
    int feature = explanation->selected_features[i];
    int term = explanation->univariate_term_index[i];
    if (feature == 0) {
      EXPECT_TRUE(explanation->is_categorical[i]);
      EXPECT_EQ(explanation->gam().term(term).type(), TermType::kFactor);
    } else {
      EXPECT_EQ(explanation->gam().term(term).type(), TermType::kSpline);
    }
  }
}

TEST(ExplainerTest, DeterministicGivenSeed) {
  Forest forest = TrainGPrimeForest();
  GefConfig config = FastConfig();
  auto a = ExplainForest(forest, config);
  auto b = ExplainForest(forest, config);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->selected_features, b->selected_features);
  EXPECT_DOUBLE_EQ(a->fidelity_rmse_test, b->fidelity_rmse_test);
}

TEST(ExplainerTest, GeneralizesOffTheSamplingLattice) {
  // Regression test for the uniform-knot failure mode: a small forest's
  // Equi-Size domains left knot intervals without D* support and the
  // spline oscillated between lattice points (off-lattice R² was
  // negative). Quantile-placed knots must keep the surrogate faithful on
  // continuous probe points it never trained on.
  Rng rng(806);
  Dataset data = MakeGPrimeDataset(2000, &rng);
  GbdtConfig fc;
  fc.num_trees = 80;
  fc.num_leaves = 8;
  fc.min_samples_leaf = 20;  // few, clustered thresholds
  Forest forest = TrainGbdt(data, nullptr, fc).forest;

  GefConfig config;  // library defaults, as the CLI uses them
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);

  std::vector<double> gam_out, forest_out;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(5);
    for (double& v : x) v = rng.Uniform();
    gam_out.push_back(explanation->gam().Predict(x));
    forest_out.push_back(forest.PredictRaw(x));
  }
  EXPECT_GT(RSquared(gam_out, forest_out), 0.9);
  EXPECT_LT(Rmse(gam_out, forest_out),
            3.0 * explanation->fidelity_rmse_test + 0.05);
}

TEST(ExplainerTest, TwoStageApiMatchesOneShot) {
  Forest forest = TrainGPrimeForest();
  GefConfig config = FastConfig();
  auto one_shot = ExplainForest(forest, config);
  GefSamplingArtifacts artifacts = BuildSamplingArtifacts(forest, config);
  auto two_stage = FitExplanation(forest, artifacts, config);
  ASSERT_NE(one_shot, nullptr);
  ASSERT_NE(two_stage, nullptr);
  EXPECT_EQ(one_shot->selected_features, two_stage->selected_features);
  EXPECT_DOUBLE_EQ(one_shot->fidelity_rmse_test,
                   two_stage->fidelity_rmse_test);
  std::vector<double> x = {0.3, 0.6, 0.52, 0.1, 0.8};
  EXPECT_DOUBLE_EQ(one_shot->gam().PredictRaw(x),
                   two_stage->gam().PredictRaw(x));
}

TEST(ExplainerTest, ArtifactsReusableAcrossComponentCounts) {
  // The Fig 7 sweep pattern: one D*, many GAM configurations.
  Forest forest = TrainGPrimeForest();
  GefConfig config = FastConfig();
  GefSamplingArtifacts artifacts = BuildSamplingArtifacts(forest, config);
  double previous_rmse = 1e9;
  for (int u : {1, 3, 5}) {
    GefConfig variant = config;
    variant.num_univariate = u;
    auto explanation = FitExplanation(forest, artifacts, variant);
    ASSERT_NE(explanation, nullptr);
    EXPECT_EQ(explanation->selected_features.size(),
              static_cast<size_t>(u));
    // More components never hurt much on the additive g'.
    EXPECT_LT(explanation->fidelity_rmse_test, previous_rmse + 0.05);
    previous_rmse = explanation->fidelity_rmse_test;
  }
}

TEST(ExplainerTest, ArtifactShapesAreConsistent) {
  Forest forest = TrainGPrimeForest();
  GefConfig config = FastConfig();
  GefSamplingArtifacts artifacts = BuildSamplingArtifacts(forest, config);
  EXPECT_EQ(artifacts.domains.size(), forest.num_features());
  EXPECT_EQ(artifacts.dstar.num_rows(), config.num_samples);
  EXPECT_EQ(artifacts.dstar.num_features(), forest.num_features());
  EXPECT_TRUE(artifacts.dstar.has_targets());
}

TEST(ExplainerDeathTest, InvalidConfigsAbort) {
  Forest forest = TrainGPrimeForest();
  {
    GefConfig config = FastConfig();
    config.num_univariate = 0;
    EXPECT_DEATH(ExplainForest(forest, config), "");
  }
  {
    GefConfig config = FastConfig();
    config.test_fraction = 1.5;
    EXPECT_DEATH(ExplainForest(forest, config), "");
  }
  {
    GefConfig config = FastConfig();
    config.num_samples = 5;
    EXPECT_DEATH(ExplainForest(forest, config), "");
  }
  {
    GefConfig config = FastConfig();
    config.spline_basis = 2;
    EXPECT_DEATH(ExplainForest(forest, config), "");
  }
}

TEST(ExplainerDeathTest, SplitlessForestAborts) {
  std::vector<Tree> trees;
  trees.push_back(Tree::Stump(1.0));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 2, {});
  GefConfig config = FastConfig();
  EXPECT_DEATH(ExplainForest(forest, config), "no splits");
}

TEST(LocalExplanationTest, ContributionsSumToPrediction) {
  Forest forest = TrainGPrimeForest();
  auto explanation = ExplainForest(forest, FastConfig());
  ASSERT_NE(explanation, nullptr);
  std::vector<double> x = {0.3, 0.6, 0.52, 0.1, 0.8};
  LocalExplanation local = ExplainInstance(*explanation, forest, x);
  double total = local.intercept;
  for (const auto& term : local.terms) total += term.contribution;
  EXPECT_NEAR(total, local.gam_prediction, 1e-9);
  EXPECT_NEAR(local.gam_prediction, local.forest_prediction, 0.5);
}

TEST(LocalExplanationTest, TermsSortedByAbsoluteContribution) {
  Forest forest = TrainGPrimeForest();
  auto explanation = ExplainForest(forest, FastConfig());
  ASSERT_NE(explanation, nullptr);
  LocalExplanation local =
      ExplainInstance(*explanation, forest, {0.9, 0.1, 0.9, 0.9, 0.1});
  for (size_t i = 1; i < local.terms.size(); ++i) {
    EXPECT_GE(std::fabs(local.terms[i - 1].contribution),
              std::fabs(local.terms[i].contribution));
  }
}

TEST(LocalExplanationTest, WhatIfDeltaDetectsSharpJump) {
  // Near the sigmoid jump of x3 (index 2), a small +step flips the
  // contribution strongly upward — the paper's key local insight.
  Forest forest = TrainGPrimeForest(805, 5000);
  GefConfig config = FastConfig();
  config.num_samples = 8000;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);
  std::vector<double> x = {0.5, 0.5, 0.47, 0.5, 0.5};
  LocalExplanation local =
      ExplainInstance(*explanation, forest, x, /*step_fraction=*/0.1);
  const LocalTermContribution* sigmoid_term = nullptr;
  for (const auto& term : local.terms) {
    if (term.features == std::vector<int>{2}) sigmoid_term = &term;
  }
  ASSERT_NE(sigmoid_term, nullptr);
  EXPECT_GT(sigmoid_term->delta_plus, 0.3);
  EXPECT_GT(sigmoid_term->delta_plus,
            std::fabs(sigmoid_term->delta_minus));
}

TEST(LocalExplanationTest, IntervalsBracketContributions) {
  Forest forest = TrainGPrimeForest();
  auto explanation = ExplainForest(forest, FastConfig());
  ASSERT_NE(explanation, nullptr);
  LocalExplanation local =
      ExplainInstance(*explanation, forest, {0.2, 0.4, 0.6, 0.8, 0.5});
  for (const auto& term : local.terms) {
    EXPECT_LE(term.lower, term.contribution);
    EXPECT_GE(term.upper, term.contribution);
  }
}

TEST(LocalExplanationTest, FormatProducesReadableTable) {
  Forest forest = TrainGPrimeForest();
  auto explanation = ExplainForest(forest, FastConfig());
  ASSERT_NE(explanation, nullptr);
  LocalExplanation local =
      ExplainInstance(*explanation, forest, {0.5, 0.5, 0.5, 0.5, 0.5});
  std::string table = FormatLocalExplanation(local);
  EXPECT_NE(table.find("GAM prediction"), std::string::npos);
  EXPECT_NE(table.find("s(x"), std::string::npos);
  EXPECT_NE(table.find("95% CI"), std::string::npos);
}

}  // namespace
}  // namespace gef
