// Tests for the forest summary (model card) and the ROC-AUC metric.

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "forest/summary.h"
#include "stats/metrics.h"

namespace gef {
namespace {

Forest TwoTreeForest() {
  Tree t1 = Tree::Stump(0.0, 100);
  auto [l, r] = t1.SplitLeaf(0, 0, 0.5, 4.0, -1.0, 0.0, 50, 50);
  t1.SplitLeaf(r, 1, 0.3, 2.0, 2.0, 3.0, 25, 25);
  (void)l;
  Tree t2 = Tree::Stump(0.5, 100);
  std::vector<Tree> trees;
  trees.push_back(std::move(t1));
  trees.push_back(std::move(t2));
  return Forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 3, {"a", "b", "c"});
}

TEST(ForestSummaryTest, CountsAndDepths) {
  ForestSummary summary = SummarizeForest(TwoTreeForest());
  EXPECT_EQ(summary.num_trees, 2u);
  EXPECT_EQ(summary.num_features, 3u);
  EXPECT_EQ(summary.total_internal_nodes, 2u);
  EXPECT_EQ(summary.total_leaves, 4u);  // 3 in t1 + 1 in t2
  EXPECT_EQ(summary.min_depth, 1);
  EXPECT_EQ(summary.max_depth, 3);
  EXPECT_DOUBLE_EQ(summary.mean_depth, 2.0);
  EXPECT_DOUBLE_EQ(summary.mean_leaves_per_tree, 2.0);
}

TEST(ForestSummaryTest, LeafValueRangeAndFeatureUsage) {
  ForestSummary summary = SummarizeForest(TwoTreeForest());
  EXPECT_DOUBLE_EQ(summary.min_leaf_value, -1.0);
  EXPECT_DOUBLE_EQ(summary.max_leaf_value, 3.0);
  EXPECT_EQ(summary.num_used_features, 2u);  // c unused
  EXPECT_EQ(summary.distinct_thresholds[0], 1u);
  EXPECT_EQ(summary.distinct_thresholds[1], 1u);
  EXPECT_EQ(summary.distinct_thresholds[2], 0u);
  EXPECT_DOUBLE_EQ(summary.gain[0], 4.0);
  EXPECT_DOUBLE_EQ(summary.gain[2], 0.0);
}

TEST(ForestSummaryTest, FormatIsReadable) {
  Forest forest = TwoTreeForest();
  std::string card = FormatForestSummary(SummarizeForest(forest),
                                         forest.feature_names());
  EXPECT_NE(card.find("2 trees"), std::string::npos);
  EXPECT_NE(card.find("2 of 3 used"), std::string::npos);
  EXPECT_NE(card.find("a"), std::string::npos);
  // Unused zero-gain features do not clutter the table.
  EXPECT_EQ(card.find("\n  c "), std::string::npos);
}

TEST(ForestSummaryTest, TrainedForestSummaryIsConsistent) {
  Rng rng(301);
  Dataset data = MakeGPrimeDataset(1500, &rng);
  GbdtConfig fc;
  fc.num_trees = 25;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  ForestSummary summary = SummarizeForest(forest);
  EXPECT_EQ(summary.num_trees, 25u);
  EXPECT_EQ(summary.total_internal_nodes,
            forest.num_internal_nodes());
  // Each tree's leaves = internal + 1 for binary trees.
  EXPECT_EQ(summary.total_leaves,
            summary.total_internal_nodes + summary.num_trees);
  EXPECT_EQ(summary.num_used_features, 5u);
}

TEST(RocAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(RocAucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, RandomScoresNearHalf) {
  Rng rng(302);
  std::vector<double> scores, labels;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(rng.Uniform());
    labels.push_back(rng.Uniform() < 0.3 ? 1.0 : 0.0);
  }
  EXPECT_NEAR(RocAuc(scores, labels), 0.5, 0.03);
}

TEST(RocAucTest, TiesGetHalfCredit) {
  // One positive and one negative share the same score: AUC = 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5}, {1, 0}), 0.5);
  // Known mixed case: scores {0.1, 0.5, 0.5, 0.9}, labels {0, 0, 1, 1}:
  // pairs: (0.5+ vs 0.1-)=1, (0.5+ vs 0.5-)=0.5, (0.9+ vs both-)=2
  // => AUC = 3.5 / 4.
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.5, 0.5, 0.9}, {0, 0, 1, 1}), 0.875);
}

TEST(RocAucTest, DegenerateSingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(RocAucTest, ClassifierForestScoresAboveChance) {
  Rng rng(303);
  Dataset data(std::vector<std::string>{"x"});
  for (int i = 0; i < 2000; ++i) {
    double x = rng.Uniform();
    double p = x;  // P(y=1|x) = x
    data.AppendRow({x}, rng.Uniform() < p ? 1.0 : 0.0);
  }
  GbdtConfig fc;
  fc.objective = Objective::kBinaryClassification;
  fc.num_trees = 30;
  fc.num_leaves = 4;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  double auc = RocAuc(forest.PredictBatch(data), data.targets());
  // Bayes-optimal AUC for this generator is 2/3 + noise headroom.
  EXPECT_GT(auc, 0.6);
  EXPECT_LT(auc, 0.85);
}

}  // namespace
}  // namespace gef
