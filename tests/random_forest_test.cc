// Tests for Random Forest training (the paper's future-work extension).

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "forest/random_forest_trainer.h"
#include "stats/metrics.h"

namespace gef {
namespace {

TEST(RandomForestTest, LearnsGPrime) {
  Rng rng(101);
  Dataset data = MakeGPrimeDataset(3000, &rng);
  auto split = SplitTrainTest(data, 0.2, &rng);
  RandomForestConfig config;
  config.num_trees = 60;
  config.num_leaves = 64;
  config.min_samples_leaf = 3;
  config.feature_fraction = 0.8;
  Forest forest = TrainRandomForest(split.train, config);
  EXPECT_EQ(forest.aggregation(), Aggregation::kAverage);
  double r2 = RSquared(forest.PredictRawBatch(split.test),
                       split.test.targets());
  // Bagged forests trade bias for variance; they trail boosted forests
  // on smooth targets but must still explain most of the variance.
  EXPECT_GT(r2, 0.7);
}

TEST(RandomForestTest, AveragingBoundsPredictionsByLeafRange) {
  Rng rng(102);
  Dataset data(std::vector<std::string>{"x"});
  for (int i = 0; i < 500; ++i) {
    data.AppendRow({rng.Uniform()}, rng.Uniform(2.0, 3.0));
  }
  RandomForestConfig config;
  config.num_trees = 10;
  Forest forest = TrainRandomForest(data, config);
  for (size_t i = 0; i < 50; ++i) {
    double p = forest.PredictRaw({rng.Uniform()});
    EXPECT_GE(p, 2.0 - 1e-9);
    EXPECT_LE(p, 3.0 + 1e-9);
  }
}

TEST(RandomForestTest, MoreTreesReduceVariance) {
  Rng rng(103);
  Dataset data = MakeGPrimeDataset(1000, &rng, 0.3);
  auto split = SplitTrainTest(data, 0.3, &rng);
  RandomForestConfig small;
  small.num_trees = 2;
  small.seed = 1;
  RandomForestConfig large = small;
  large.num_trees = 50;
  double rmse_small =
      Rmse(TrainRandomForest(split.train, small).PredictRawBatch(split.test),
           split.test.targets());
  double rmse_large =
      Rmse(TrainRandomForest(split.train, large).PredictRawBatch(split.test),
           split.test.targets());
  EXPECT_LT(rmse_large, rmse_small);
}

TEST(RandomForestTest, ProbabilityAveragingForClassification) {
  Rng rng(104);
  Dataset data(std::vector<std::string>{"x"});
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform();
    data.AppendRow({x}, x > 0.5 ? 1.0 : 0.0);
  }
  RandomForestConfig config;
  config.num_trees = 30;
  config.min_samples_leaf = 5;
  Forest forest = TrainRandomForest(data, config);
  // Averaged {0,1} leaves live in [0, 1] and act as probabilities.
  double high = forest.PredictRaw({0.9});
  double low = forest.PredictRaw({0.1});
  EXPECT_GT(high, 0.9);
  EXPECT_LT(low, 0.1);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  Rng rng(105);
  Dataset data = MakeGPrimeDataset(400, &rng);
  RandomForestConfig config;
  config.num_trees = 8;
  Forest a = TrainRandomForest(data, config);
  Forest b = TrainRandomForest(data, config);
  std::vector<double> pa = a.PredictRawBatch(data);
  std::vector<double> pb = b.PredictRawBatch(data);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(RandomForestTest, GainImportanceIdentifiesSignalFeatures) {
  Rng rng(106);
  Dataset data(std::vector<std::string>{"signal", "noise"});
  for (int i = 0; i < 1500; ++i) {
    double s = rng.Uniform();
    data.AppendRow({s, rng.Uniform()}, 5.0 * s);
  }
  RandomForestConfig config;
  config.num_trees = 20;
  config.feature_fraction = 1.0;
  Forest forest = TrainRandomForest(data, config);
  auto importance = forest.GainImportance();
  EXPECT_GT(importance[0], 10.0 * importance[1]);
}

}  // namespace
}  // namespace gef
