// GefConfigFingerprint is the surrogate-cache key (together with the
// forest hash). A config field the fingerprint misses means two
// different pipelines silently share one cached model — a correctness
// bug that no functional test would catch until the wrong explanation
// ships. This file pins the contract from both sides:
//
//  1. A size tripwire: adding a field to GefConfig changes its size and
//     fails the static_assert below, pointing whoever did it at the
//     fingerprint. (Guarded to x86-64 libstdc++, the CI ABI; other
//     ABIs still run the behavioral tests.)
//  2. Behavioral sensitivity: mutating *every* field one at a time must
//     change the fingerprint.

#include "serve/surrogate_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gef/explainer.h"

namespace gef {
namespace serve {
namespace {

#if defined(__x86_64__) && defined(__GLIBCXX__) && !defined(_GLIBCXX_DEBUG)
// If this fires you added/removed/re-typed a GefConfig field. Update
// GefConfigFingerprint (serve/surrogate_cache.cc) so the new field
// participates in the cache key, extend MutateEveryField below, and
// only then adjust the expected size.
static_assert(sizeof(GefConfig) == 168,
              "GefConfig changed: update GefConfigFingerprint and "
              "config_fingerprint_test before bumping this size");
#endif

/// One mutation per GefConfig field, each a distinct valid config.
std::vector<GefConfig> MutateEveryField() {
  std::vector<GefConfig> mutants;
  auto add = [&mutants](void (*mutate)(GefConfig*)) {
    GefConfig config;
    mutate(&config);
    mutants.push_back(std::move(config));
  };
  add([](GefConfig* c) { c->num_univariate += 1; });
  add([](GefConfig* c) { c->num_bivariate += 1; });
  add([](GefConfig* c) {
    c->sampling = c->sampling == SamplingStrategy::kEquiSize
                      ? SamplingStrategy::kEquiWidth
                      : SamplingStrategy::kEquiSize;
  });
  add([](GefConfig* c) { c->k += 1; });
  add([](GefConfig* c) { c->epsilon_fraction += 0.01; });
  add([](GefConfig* c) { c->num_samples += 1; });
  add([](GefConfig* c) { c->test_fraction += 0.01; });
  add([](GefConfig* c) {
    c->interaction = c->interaction == InteractionStrategy::kGainPath
                         ? InteractionStrategy::kHStat
                         : InteractionStrategy::kGainPath;
  });
  add([](GefConfig* c) { c->hstat_sample_rows += 1; });
  add([](GefConfig* c) { c->categorical_threshold += 1; });
  add([](GefConfig* c) { c->spline_basis += 1; });
  add([](GefConfig* c) { c->tensor_basis += 1; });
  add([](GefConfig* c) { c->lambda_grid.push_back(1e3); });
  add([](GefConfig* c) { c->lambda_grid[0] *= 2.0; });
  add([](GefConfig* c) { c->per_term_lambda = !c->per_term_lambda; });
  add([](GefConfig* c) { c->surrogate_backend = "boosted_fanova"; });
  add([](GefConfig* c) { c->fanova_rounds += 1; });
  add([](GefConfig* c) { c->fanova_shrinkage += 0.01; });
  add([](GefConfig* c) { c->fanova_leaves += 1; });
  add([](GefConfig* c) { c->fanova_max_bins += 1; });
  add([](GefConfig* c) { c->seed += 1; });
  return mutants;
}

TEST(GefConfigFingerprint, EveryFieldParticipates) {
  const uint64_t base = GefConfigFingerprint(GefConfig{});
  std::vector<GefConfig> mutants = MutateEveryField();
  // Keep this count in sync with the field-by-field list above; a new
  // GefConfig field must add a mutation here (the static_assert is what
  // forces you to look).
  EXPECT_EQ(mutants.size(), 21u);
  for (size_t i = 0; i < mutants.size(); ++i) {
    EXPECT_NE(GefConfigFingerprint(mutants[i]), base)
        << "mutation " << i << " did not change the fingerprint — "
           "the field is missing from GefConfigFingerprint";
  }
}

TEST(GefConfigFingerprint, MutantsAreMutuallyDistinct) {
  std::vector<GefConfig> mutants = MutateEveryField();
  std::vector<uint64_t> prints;
  prints.push_back(GefConfigFingerprint(GefConfig{}));
  for (const GefConfig& config : mutants) {
    prints.push_back(GefConfigFingerprint(config));
  }
  for (size_t i = 0; i < prints.size(); ++i) {
    for (size_t j = i + 1; j < prints.size(); ++j) {
      EXPECT_NE(prints[i], prints[j]) << "collision between " << i
                                      << " and " << j;
    }
  }
}

TEST(GefConfigFingerprint, BackendSeparatesCacheKeys) {
  GefConfig spline;
  GefConfig fanova;
  fanova.surrogate_backend = "boosted_fanova";
  EXPECT_NE(GefConfigFingerprint(spline), GefConfigFingerprint(fanova));
}

TEST(GefConfigFingerprint, IsDeterministic) {
  GefConfig config;
  config.surrogate_backend = "boosted_fanova";
  config.lambda_grid = {1e-2, 1.0};
  EXPECT_EQ(GefConfigFingerprint(config), GefConfigFingerprint(config));
}

}  // namespace
}  // namespace serve
}  // namespace gef
