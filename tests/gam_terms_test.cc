// Tests for GAM terms and design-matrix assembly.

#include <memory>

#include <gtest/gtest.h>

#include "gam/design.h"
#include "gam/terms.h"

namespace gef {
namespace {

TEST(InterceptTermTest, ConstantOne) {
  InterceptTerm term;
  EXPECT_EQ(term.num_coeffs(), 1);
  double out = 0.0;
  term.Evaluate({1.0, 2.0}, &out);
  EXPECT_DOUBLE_EQ(out, 1.0);
  EXPECT_TRUE(term.Features().empty());
  EXPECT_DOUBLE_EQ(term.Penalty()(0, 0), 0.0);
}

TEST(SplineTermTest, EvaluatesBasisOnItsFeature) {
  SplineTerm term(/*feature=*/1, 0.0, 1.0, 8);
  std::vector<double> out(8);
  term.Evaluate({99.0, 0.5, -5.0}, out.data());
  double sum = 0.0;
  for (double v : out) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-10);  // partition of unity at x1 = 0.5
  EXPECT_EQ(term.Features(), std::vector<int>{1});
}

TEST(SplineTermTest, LabelUsesFeatureName) {
  SplineTerm term(0, 0.0, 1.0, 8);
  EXPECT_EQ(term.Label({"age", "income"}), "s(age)");
  EXPECT_EQ(term.Label({}), "s(f0)");
}

TEST(FactorTermTest, OneHotOnNearestLevel) {
  FactorTerm term(0, {0.0, 1.0, 2.0});
  std::vector<double> out(3);
  term.Evaluate({1.0}, out.data());
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  // Nearest-level matching tolerates float noise.
  term.Evaluate({1.9999}, out.data());
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(FactorTermTest, LevelsDeduplicatedAndSorted) {
  FactorTerm term(0, {2.0, 0.0, 2.0, 1.0});
  EXPECT_EQ(term.num_coeffs(), 3);
  EXPECT_DOUBLE_EQ(term.levels()[0], 0.0);
  EXPECT_DOUBLE_EQ(term.levels()[2], 2.0);
}

TEST(FactorTermTest, RidgePenalty) {
  FactorTerm term(0, {0.0, 1.0});
  Matrix penalty = term.Penalty();
  EXPECT_DOUBLE_EQ(penalty(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(penalty(0, 1), 0.0);
}

TEST(TensorTermTest, OuterProductOfMarginals) {
  TensorTerm term(0, 0.0, 1.0, 1, 0.0, 1.0, 5);
  ASSERT_EQ(term.num_coeffs(), 25);
  std::vector<double> out(25);
  term.Evaluate({0.3, 0.7}, out.data());
  // Sum of the outer product of two partitions of unity is 1.
  double sum = 0.0;
  for (double v : out) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-10);
  // Cross-check one entry against the marginals.
  auto va = term.basis_a().Evaluate(0.3);
  auto vb = term.basis_b().Evaluate(0.7);
  EXPECT_NEAR(out[2 * 5 + 3], va[2] * vb[3], 1e-12);
}

TEST(TensorTermTest, PenaltyIsKroneckerSum) {
  TensorTerm term(0, 0.0, 1.0, 1, 0.0, 1.0, 4);
  Matrix penalty = term.Penalty();
  ASSERT_EQ(penalty.rows(), 16u);
  // Coefficients affine in both directions are in the null space of
  // S1⊗I + I⊗S2 with 2nd-order difference penalties.
  Vector c(16);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) c[i * 4 + j] = 1.0 + 2.0 * i - 3.0 * j;
  }
  EXPECT_NEAR(Norm(MatVec(penalty, c)), 0.0, 1e-10);
}

TEST(TensorTermTest, CarriesIdentifiabilityRidge) {
  TensorTerm tensor(0, 0.0, 1.0, 1, 0.0, 1.0, 4);
  EXPECT_GT(tensor.FixedRidge(), 0.0);
  SplineTerm spline(0, 0.0, 1.0, 8);
  EXPECT_DOUBLE_EQ(spline.FixedRidge(), 0.0);
  InterceptTerm intercept;
  EXPECT_DOUBLE_EQ(intercept.FixedRidge(), 0.0);
}

TEST(DesignTest, FixedRidgeCoversTensorBlockOnly) {
  TermList terms;
  terms.push_back(std::make_unique<InterceptTerm>());
  terms.push_back(std::make_unique<SplineTerm>(0, 0.0, 1.0, 6));
  terms.push_back(
      std::make_unique<TensorTerm>(0, 0.0, 1.0, 1, 0.0, 1.0, 4));
  DesignLayout layout = ComputeLayout(terms);
  Vector ridge = BuildFixedRidge(terms, layout);
  ASSERT_EQ(ridge.size(), static_cast<size_t>(1 + 6 + 16));
  for (int j = 0; j < 7; ++j) EXPECT_DOUBLE_EQ(ridge[j], 0.0);
  for (int j = 7; j < 23; ++j) {
    EXPECT_DOUBLE_EQ(ridge[j], TensorTerm::kIdentifiabilityRidge);
  }
}

TEST(TensorTermDeathTest, SameFeatureTwiceAborts) {
  EXPECT_DEATH(TensorTerm(2, 0.0, 1.0, 2, 0.0, 1.0, 4), "");
}

TermList MakeTerms() {
  TermList terms;
  terms.push_back(std::make_unique<InterceptTerm>());
  terms.push_back(std::make_unique<SplineTerm>(0, 0.0, 1.0, 6));
  terms.push_back(std::make_unique<FactorTerm>(
      1, std::vector<double>{0.0, 1.0}));
  return terms;
}

Dataset MakeData() {
  Dataset d(std::vector<std::string>{"x", "c"});
  d.AppendRow({0.1, 0.0}, 1.0);
  d.AppendRow({0.5, 1.0}, 2.0);
  d.AppendRow({0.9, 0.0}, 3.0);
  d.AppendRow({0.4, 1.0}, 4.0);
  return d;
}

TEST(DesignTest, LayoutOffsets) {
  TermList terms = MakeTerms();
  DesignLayout layout = ComputeLayout(terms);
  EXPECT_EQ(layout.total_cols, 1 + 6 + 2);
  EXPECT_EQ(layout.term_offsets[0], 0);
  EXPECT_EQ(layout.term_offsets[1], 1);
  EXPECT_EQ(layout.term_offsets[2], 7);
}

TEST(DesignTest, RawDesignRowsMatchTermEvaluation) {
  TermList terms = MakeTerms();
  DesignLayout layout = ComputeLayout(terms);
  Dataset d = MakeData();
  Matrix design = BuildRawDesign(terms, d, layout);
  ASSERT_EQ(design.rows(), 4u);
  ASSERT_EQ(design.cols(), 9u);
  EXPECT_DOUBLE_EQ(design(0, 0), 1.0);  // intercept
  // Factor block of row 1 (c = 1): columns 7..8 = {0, 1}.
  EXPECT_DOUBLE_EQ(design(1, 7), 0.0);
  EXPECT_DOUBLE_EQ(design(1, 8), 1.0);
}

TEST(DesignTest, CentersZeroMeanTheColumns) {
  TermList terms = MakeTerms();
  DesignLayout layout = ComputeLayout(terms);
  Dataset d = MakeData();
  Matrix design = BuildRawDesign(terms, d, layout);
  std::vector<double> centers = ComputeCenters(design, terms, layout);
  EXPECT_DOUBLE_EQ(centers[0], 0.0);  // intercept not centered
  CenterDesign(&design, centers);
  for (size_t j = 1; j < design.cols(); ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < design.rows(); ++i) mean += design(i, j);
    EXPECT_NEAR(mean / design.rows(), 0.0, 1e-12);
  }
}

TEST(DesignTest, BlockPenaltyPlacement) {
  TermList terms = MakeTerms();
  DesignLayout layout = ComputeLayout(terms);
  Matrix penalty = BuildBlockPenalty(terms, layout);
  ASSERT_EQ(penalty.rows(), 9u);
  EXPECT_DOUBLE_EQ(penalty(0, 0), 0.0);  // intercept unpenalized
  // Factor ridge block on the diagonal.
  EXPECT_DOUBLE_EQ(penalty(7, 7), 1.0);
  EXPECT_DOUBLE_EQ(penalty(8, 8), 1.0);
  // Off-diagonal cross-term coupling between blocks is zero.
  EXPECT_DOUBLE_EQ(penalty(3, 8), 0.0);
}

TEST(DesignTest, BuildDesignRowMatchesMatrixRow) {
  TermList terms = MakeTerms();
  DesignLayout layout = ComputeLayout(terms);
  Dataset d = MakeData();
  Matrix raw = BuildRawDesign(terms, d, layout);
  std::vector<double> centers = ComputeCenters(raw, terms, layout);
  Matrix centered = raw;
  CenterDesign(&centered, centers);
  std::vector<double> row(layout.total_cols);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    BuildDesignRow(terms, layout, centers, d.GetRow(i), row.data());
    for (int j = 0; j < layout.total_cols; ++j) {
      EXPECT_NEAR(row[j], centered(i, j), 1e-14);
    }
  }
}

}  // namespace
}  // namespace gef
