// Tests for the serving subsystem (DESIGN.md §3.14): content hashing,
// the always-on metrics registry, the JSON + HTTP wire formats, the
// shutdown/file-guard plumbing, the model registry, the single-flight
// surrogate cache, the request batcher and the endpoint handlers.
//
// Everything here runs on in-memory buffers — no sockets, no child
// processes — so the whole suite is TSan/ASan-friendly and fast. The
// socket layer itself is exercised end-to-end by tools/serve_smoke.sh.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "forest/serialization.h"
#include "gef/local_explanation.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/handlers.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/model_registry.h"
#include "util/shutdown.h"
#include "serve/surrogate_cache.h"
#include "stats/rng.h"
#include "util/hash.h"

namespace gef {
namespace {

using serve::HttpLimits;
using serve::HttpRequest;
using serve::HttpRequestParser;
using serve::HttpResponse;
using serve::Json;
using serve::ModelRegistry;
using serve::ParseJson;
using serve::RequestBatcher;
using serve::ServeContext;
using serve::ServedModel;
using serve::SurrogateCache;

Forest TrainSmallForest(uint64_t seed = 111) {
  Rng rng(seed);
  Dataset data = MakeGPrimeDataset(400, &rng);
  GbdtConfig config;
  config.num_trees = 8;
  config.num_leaves = 6;
  config.min_samples_leaf = 5;
  return TrainGbdt(data, nullptr, config).forest;
}

/// A deliberately tiny pipeline config so explain paths stay fast.
GefConfig TinyGefConfig() {
  GefConfig config;
  config.num_univariate = 2;
  config.num_bivariate = 0;
  config.k = 8;
  config.num_samples = 600;
  config.spline_basis = 8;
  config.seed = 5;
  return config;
}

// ---------------------------------------------------------------------
// util/hash
// ---------------------------------------------------------------------

TEST(HashTest, Fnv1aKnownVectors) {
  // Published FNV-1a 64-bit vectors.
  EXPECT_EQ(HashFnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(HashFnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(HashFnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, PointerAndStringViewAgree) {
  const std::string text = "serving layer";
  EXPECT_EQ(HashFnv1a64(text.data(), text.size()),
            HashFnv1a64(std::string_view(text)));
}

TEST(HashTest, CombineIsOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(1, 2), 3);
  uint64_t b = HashCombine(HashCombine(1, 3), 2);
  EXPECT_NE(a, b);
}

TEST(HashTest, CombineDoubleNormalizesSignedZero) {
  EXPECT_EQ(HashCombineDouble(7, 0.0), HashCombineDouble(7, -0.0));
  EXPECT_NE(HashCombineDouble(7, 0.0), HashCombineDouble(7, 1.0));
}

TEST(HashTest, HexRoundTrip) {
  const uint64_t value = 0x0123456789abcdefULL;
  std::string hex = HashToHex(value);
  EXPECT_EQ(hex, "0123456789abcdef");
  uint64_t parsed = 0;
  ASSERT_TRUE(HashFromHex(hex, &parsed));
  EXPECT_EQ(parsed, value);
}

TEST(HashTest, HexRejectsMalformed) {
  uint64_t out = 0;
  EXPECT_FALSE(HashFromHex("", &out));
  EXPECT_FALSE(HashFromHex("123", &out));                  // too short
  EXPECT_FALSE(HashFromHex("0123456789abcdeg", &out));     // bad digit
  EXPECT_FALSE(HashFromHex("0123456789abcdef0", &out));    // too long
}

TEST(HashTest, ForestContentHashIsSerializationStable) {
  Forest forest = TrainSmallForest();
  uint64_t original = forest.ContentHash();
  auto restored = ForestFromString(ForestToString(forest));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ContentHash(), original);
  // A different forest must (with overwhelming probability) differ.
  EXPECT_NE(TrainSmallForest(222).ContentHash(), original);
}

// ---------------------------------------------------------------------
// obs/metrics
// ---------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  obs::metrics::ResetAllForTest();
  auto& counter = obs::metrics::GetCounter("test.requests");
  counter.Add();
  counter.Add(4);
  EXPECT_EQ(counter.Value(), 5u);
  // Same name resolves to the same cell.
  EXPECT_EQ(&obs::metrics::GetCounter("test.requests"), &counter);

  obs::metrics::GetGauge("test.resident").Set(3.5);
  EXPECT_DOUBLE_EQ(obs::metrics::GetGauge("test.resident").Value(), 3.5);

  auto& histogram = obs::metrics::GetHistogram("test.latency");
  for (int i = 1; i <= 100; ++i) histogram.Observe(i * 0.001);
  auto snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.1);
  // Geometric buckets: quantiles are approximate; demand sane ordering.
  EXPECT_LE(snapshot.p50, snapshot.p90);
  EXPECT_LE(snapshot.p90, snapshot.p99);
  EXPECT_GT(snapshot.p50, 0.0);
  EXPECT_LE(snapshot.p99, snapshot.max * 2.0);
}

TEST(MetricsTest, RenderTextListsEveryMetric) {
  obs::metrics::ResetAllForTest();
  obs::metrics::GetCounter("render.count").Add(2);
  obs::metrics::GetGauge("render.gauge").Set(1.0);
  obs::metrics::GetHistogram("render.hist").Observe(0.5);
  std::string text = obs::metrics::RenderText();
  EXPECT_NE(text.find("render.count 2"), std::string::npos);
  EXPECT_NE(text.find("render.gauge"), std::string::npos);
  EXPECT_NE(text.find("render.hist.count 1"), std::string::npos);
  EXPECT_NE(text.find("render.hist.p99"), std::string::npos);
}

TEST(MetricsTest, ConcurrentObserveIsConsistent) {
  obs::metrics::ResetAllForTest();
  auto& counter = obs::metrics::GetCounter("stress.count");
  auto& histogram = obs::metrics::GetHistogram("stress.hist");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Observe(1e-4 * (t + 1));
        if (i % 64 == 0) {
          // Concurrent scrape while writers are active — the contract
          // /metrics depends on.
          (void)obs::metrics::RenderText();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram.Snapshot().count,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MetricsTest, EmptyHistogramSnapshotIsZeroed) {
  obs::metrics::ResetAllForTest();
  auto snapshot = obs::metrics::GetHistogram("empty.hist").Snapshot();
  // min_/max_ live at +/-infinity between observations (the CAS-fold
  // identity); an empty snapshot must render that as zeros, never leak
  // the sentinels into /metrics.
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
}

TEST(MetricsTest, HistogramMinMaxSurviveFirstObservationRace) {
  // Regression test for a seeding race: Observe() used to special-case
  // the first observation with plain min_/max_ stores, which could
  // overwrite a racing thread's already-CAS-folded better extremum
  // (thread A wins the count 0->1 increment, thread B folds its smaller
  // value first, A's seed store clobbers it). The fix seeds min_/max_
  // at +/-infinity so every observation goes through the CAS fold.
  // Repeat the empty->stampede cycle so the first-observation window is
  // exercised many times.
  auto& histogram = obs::metrics::GetHistogram("race.hist");
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    obs::metrics::ResetAllForTest();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      // Thread t observes t+1: the true min (1.0) and max (kThreads)
      // are each raced against the other threads' first observations.
      threads.emplace_back(
          [&histogram, t] { histogram.Observe(static_cast<double>(t + 1)); });
    }
    for (auto& thread : threads) thread.join();
    auto snapshot = histogram.Snapshot();
    ASSERT_EQ(snapshot.count, static_cast<uint64_t>(kThreads));
    ASSERT_DOUBLE_EQ(snapshot.min, 1.0) << "lost min in round " << round;
    ASSERT_DOUBLE_EQ(snapshot.max, static_cast<double>(kThreads))
        << "lost max in round " << round;
  }
}

// ---------------------------------------------------------------------
// serve/json
// ---------------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  auto parsed = ParseJson(
      R"({"row": [1, -2.5, 3e2], "model": "census", "opts": {"deep": true},
          "null_member": null, "flag": false})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& json = *parsed;
  ASSERT_TRUE(json.is_object());
  const Json* row = json.Find("row");
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(row->is_array());
  ASSERT_EQ(row->array.size(), 3u);
  EXPECT_DOUBLE_EQ(row->array[1].number, -2.5);
  EXPECT_DOUBLE_EQ(row->array[2].number, 300.0);
  EXPECT_EQ(json.Find("model")->str, "census");
  EXPECT_TRUE(json.Find("opts")->Find("deep")->boolean);
  EXPECT_EQ(json.Find("null_member")->type, Json::Type::kNull);
  EXPECT_EQ(json.Find("missing"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  auto parsed = ParseJson(R"({"s": "a\"b\\c\n\tA"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s")->str, "a\"b\\c\n\tA");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{not json").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(ParseJson("[1, 2] trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\"}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("01").ok());
}

TEST(JsonTest, DepthLimitBoundsRecursion) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep, 64).ok());
  EXPECT_TRUE(ParseJson("[[[[1]]]]", 8).ok());
}

TEST(JsonTest, NumberAndEscapeRendering) {
  EXPECT_EQ(serve::JsonNumberText(1.5), "1.5");
  EXPECT_EQ(serve::JsonNumberText(std::nan("")), "null");
  EXPECT_EQ(serve::JsonEscapeString("a\"b\\\n"), "a\\\"b\\\\\\n");
  EXPECT_EQ(serve::JsonNumberArray({1.0, 2.5}), "[1,2.5]");
}

TEST(JsonTest, FuzzedInputsNeverCrash) {
  Rng rng(991);
  const std::string seed_doc =
      R"({"row": [1.0, 2.0], "model": "m", "config": {"k": 16}})";
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string doc = seed_doc;
    int num_edits = 1 + static_cast<int>(rng.Uniform() * 4);
    for (int e = 0; e < num_edits; ++e) {
      size_t pos = static_cast<size_t>(rng.Uniform() * doc.size());
      doc[pos] = static_cast<char>(rng.Uniform() * 256);
    }
    auto parsed = ParseJson(doc);  // must return, never crash
    (void)parsed;
  }
}

// ---------------------------------------------------------------------
// serve/http
// ---------------------------------------------------------------------

TEST(HttpTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  auto state = parser.Consume("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_EQ(parser.request().headers.at("host"), "x");
  EXPECT_FALSE(parser.request().WantsClose());
}

TEST(HttpTest, ParsesPostBodyAndLowercasesHeaders) {
  HttpRequestParser parser;
  auto state = parser.Consume(
      "POST /v1/predict HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 13\r\n\r\n"
      "{\"row\": [1]}x");
  ASSERT_EQ(state, HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().body, "{\"row\": [1]}x");
  EXPECT_EQ(parser.request().headers.at("content-type"),
            "application/json");
}

TEST(HttpTest, ByteAtATimeFeeding) {
  const std::string wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  HttpRequestParser parser;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.Consume(wire.substr(i, 1)),
              HttpRequestParser::State::kNeedMore)
        << "at byte " << i;
  }
  ASSERT_EQ(parser.Consume(wire.substr(wire.size() - 1)),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpTest, PipelinedRequestsSurviveReset) {
  HttpRequestParser parser;
  auto state = parser.Consume(
      "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/healthz");
  // Reset must re-parse the buffered second request immediately.
  ASSERT_EQ(parser.Reset(), HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/metrics");
  EXPECT_EQ(parser.Reset(), HttpRequestParser::State::kNeedMore);
}

TEST(HttpTest, TruncatedRequestStaysIncomplete) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("POST /v1/predict HTTP/1.1\r\nContent-Le"),
            HttpRequestParser::State::kNeedMore);
  EXPECT_EQ(parser.Consume("ngth: 10\r\n\r\nabc"),
            HttpRequestParser::State::kNeedMore);
}

TEST(HttpTest, OversizedHeadersAre431) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
  wire += std::string(256, 'a');
  ASSERT_EQ(parser.Consume(wire), HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpTest, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpRequestParser parser(limits);
  auto state = parser.Consume(
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpTest, TransferEncodingIs501) {
  HttpRequestParser parser;
  auto state = parser.Consume(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpTest, UnsupportedVersionIs505) {
  HttpRequestParser parser;
  auto state = parser.Consume("GET / HTTP/2.0\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpTest, MalformedRequestLineIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("garbage\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);

  HttpRequestParser parser2;
  ASSERT_EQ(parser2.Consume("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser2.error_status(), 400);
}

TEST(HttpTest, ConnectionCloseSemantics) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume(
                "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            HttpRequestParser::State::kDone);
  EXPECT_TRUE(parser.request().WantsClose());

  HttpRequestParser parser10;
  ASSERT_EQ(parser10.Consume("GET / HTTP/1.0\r\n\r\n"),
            HttpRequestParser::State::kDone);
  EXPECT_TRUE(parser10.request().WantsClose());
}

TEST(HttpTest, SerializeResponseCarriesContentLength) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  std::string wire = serve::SerializeHttpResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  HttpResponse error = serve::MakeErrorResponse(404, "nope");
  EXPECT_EQ(error.status, 404);
  EXPECT_NE(error.body.find("nope"), std::string::npos);
}

TEST(HttpTest, FuzzedWireBytesNeverCrash) {
  Rng rng(4242);
  const std::string seed_wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 12\r\n\r\n"
      "{\"row\":[1]}x";
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string wire = seed_wire;
    int num_edits = 1 + static_cast<int>(rng.Uniform() * 6);
    for (int e = 0; e < num_edits; ++e) {
      size_t pos = static_cast<size_t>(rng.Uniform() * wire.size());
      wire[pos] = static_cast<char>(rng.Uniform() * 256);
    }
    HttpRequestParser parser;
    // Feed in two random-sized chunks to cover the incremental path.
    size_t split = static_cast<size_t>(rng.Uniform() * wire.size());
    parser.Consume(wire.substr(0, split));
    auto state = parser.Consume(wire.substr(split));
    if (state == HttpRequestParser::State::kError) {
      EXPECT_GE(parser.error_status(), 400);
      EXPECT_LT(parser.error_status(), 600);
    }
  }
}

// ---------------------------------------------------------------------
// util/shutdown
// ---------------------------------------------------------------------

TEST(ShutdownTest, GuardedFileIsUnlinkedOnSignalPath) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "gef_serve_test";
  fs::create_directories(dir);
  fs::path partial = dir / "partial_model.txt";
  {
    ScopedFileGuard guard(partial.string());
    std::FILE* f = std::fopen(partial.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("half-written", f);
    std::fclose(f);
    ASSERT_TRUE(fs::exists(partial));
    internal::UnlinkGuardedFilesForTest();
    EXPECT_FALSE(fs::exists(partial));
  }
}

TEST(ShutdownTest, CommittedFileSurvives) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "gef_serve_test";
  fs::create_directories(dir);
  fs::path done = dir / "committed_model.txt";
  {
    ScopedFileGuard guard(done.string());
    std::FILE* f = std::fopen(done.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("complete", f);
    std::fclose(f);
    guard.Commit();
    internal::UnlinkGuardedFilesForTest();
  }
  EXPECT_TRUE(fs::exists(done));
  fs::remove(done);
}

TEST(ShutdownTest, RequestShutdownSetsFlagAndWakesPipe) {
  InstallShutdownHandler();
  internal::ResetShutdownStateForTest();
  EXPECT_FALSE(ShutdownRequested());
  EnableDrainMode();
  RequestShutdown();
  EXPECT_TRUE(ShutdownRequested());
  EXPECT_GE(ShutdownWakeFd(), 0);
  internal::ResetShutdownStateForTest();
  EXPECT_FALSE(ShutdownRequested());
}

// ---------------------------------------------------------------------
// serve/model_registry
// ---------------------------------------------------------------------

TEST(ModelRegistryTest, AddGetListRemove) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.AddModel("a", TrainSmallForest(1)).ok());
  ASSERT_TRUE(registry.AddModel("b", TrainSmallForest(2)).ok());
  EXPECT_EQ(registry.size(), 2u);

  auto a = registry.Get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "a");
  EXPECT_EQ(a->hash, a->forest.ContentHash());
  EXPECT_EQ(registry.Get("missing"), nullptr);

  // Two models: GetOnly is ambiguous.
  EXPECT_EQ(registry.GetOnly(), nullptr);
  auto list = registry.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0]->name, "a");
  EXPECT_EQ(list[1]->name, "b");

  EXPECT_TRUE(registry.Remove("b"));
  EXPECT_FALSE(registry.Remove("b"));
  ASSERT_NE(registry.GetOnly(), nullptr);
  EXPECT_EQ(registry.GetOnly()->name, "a");
}

TEST(ModelRegistryTest, HotSwapPreservesInFlightSnapshot) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.AddModel("m", TrainSmallForest(1)).ok());
  auto before = registry.Get("m");
  ASSERT_TRUE(registry.AddModel("m", TrainSmallForest(2)).ok());
  auto after = registry.Get("m");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before.get(), after.get());
  EXPECT_NE(before->hash, after->hash);
  // The old snapshot still answers predictions (hot-swap contract).
  std::vector<double> row(before->forest.num_features(), 0.5);
  (void)before->forest.Predict(row);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistryTest, LoadModelHashMatchesInMemoryHash) {
  namespace fs = std::filesystem;
  Forest forest = TrainSmallForest(3);
  fs::path path =
      fs::temp_directory_path() / "gef_serve_test" / "registry_model.txt";
  fs::create_directories(path.parent_path());
  ASSERT_TRUE(SaveForest(forest, path.string()).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("disk", path.string()).ok());
  auto model = registry.Get("disk");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->hash, forest.ContentHash());
  EXPECT_EQ(model->source_path, path.string());

  EXPECT_FALSE(registry.LoadModel("bad", "/nonexistent/model.txt").ok());
  EXPECT_EQ(registry.Get("bad"), nullptr);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// serve/surrogate_cache
// ---------------------------------------------------------------------

TEST(SurrogateCacheTest, ConfigFingerprintSeparatesConfigs) {
  GefConfig base = TinyGefConfig();
  GefConfig changed = base;
  changed.num_univariate += 1;
  EXPECT_NE(serve::GefConfigFingerprint(base),
            serve::GefConfigFingerprint(changed));
  GefConfig lambda_changed = base;
  lambda_changed.lambda_grid.push_back(1e3);
  EXPECT_NE(serve::GefConfigFingerprint(base),
            serve::GefConfigFingerprint(lambda_changed));
  EXPECT_EQ(serve::GefConfigFingerprint(base),
            serve::GefConfigFingerprint(TinyGefConfig()));
}

TEST(SurrogateCacheTest, SingleFlightFitsOncePerKey) {
  obs::metrics::ResetAllForTest();
  Forest forest = TrainSmallForest();
  GefConfig config = TinyGefConfig();
  SurrogateCache cache(4);
  std::atomic<int> fit_calls{0};

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const GefExplanation>> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache.GetOrFit(forest.ContentHash(), config, [&] {
        fit_calls.fetch_add(1);
        return ExplainForest(forest, config);
      });
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(fit_calls.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 1u);
  EXPECT_GE(obs::metrics::GetCounter("serve.surrogate_cache.hits").Value()
                + obs::metrics::GetCounter("serve.surrogate_cache.misses")
                      .Value(),
            static_cast<uint64_t>(kThreads));
}

TEST(SurrogateCacheTest, DistinctKeysFitSeparately) {
  SurrogateCache cache(4);
  std::atomic<int> fit_calls{0};
  auto fake_fit = [&] {
    fit_calls.fetch_add(1);
    return std::make_unique<GefExplanation>();
  };
  GefConfig config = TinyGefConfig();
  (void)cache.GetOrFit(1, config, fake_fit);
  (void)cache.GetOrFit(2, config, fake_fit);
  GefConfig other = config;
  other.k *= 2;
  (void)cache.GetOrFit(1, other, fake_fit);
  (void)cache.GetOrFit(1, config, fake_fit);  // hit
  EXPECT_EQ(fit_calls.load(), 3);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SurrogateCacheTest, LruEvictionRefitsColdKey) {
  SurrogateCache cache(2);
  std::atomic<int> fit_calls{0};
  auto fake_fit = [&] {
    fit_calls.fetch_add(1);
    return std::make_unique<GefExplanation>();
  };
  GefConfig config = TinyGefConfig();
  (void)cache.GetOrFit(1, config, fake_fit);
  (void)cache.GetOrFit(2, config, fake_fit);
  (void)cache.GetOrFit(1, config, fake_fit);  // refresh key 1
  (void)cache.GetOrFit(3, config, fake_fit);  // evicts key 2 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.GetOrFit(1, config, fake_fit);  // still resident
  EXPECT_EQ(fit_calls.load(), 3);
  (void)cache.GetOrFit(2, config, fake_fit);  // evicted -> refit
  EXPECT_EQ(fit_calls.load(), 4);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SurrogateCacheTest, FailedFitIsCachedAsNull) {
  SurrogateCache cache(2);
  std::atomic<int> fit_calls{0};
  GefConfig config = TinyGefConfig();
  auto failing_fit = [&]() -> std::unique_ptr<GefExplanation> {
    fit_calls.fetch_add(1);
    return nullptr;
  };
  EXPECT_EQ(cache.GetOrFit(9, config, failing_fit), nullptr);
  EXPECT_EQ(cache.GetOrFit(9, config, failing_fit), nullptr);
  EXPECT_EQ(fit_calls.load(), 1);  // deterministic failure: no retry
}

// ---------------------------------------------------------------------
// serve/batcher
// ---------------------------------------------------------------------

TEST(BatcherTest, PredictMatchesDirectForestCall) {
  auto model = std::make_shared<ServedModel>();
  model->name = "m";
  model->forest = TrainSmallForest();
  model->hash = model->forest.ContentHash();

  RequestBatcher::Options options;
  RequestBatcher batcher(options);
  Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> row(model->forest.num_features());
    for (auto& v : row) v = rng.Uniform() * 5.0;
    auto result = batcher.Predict(model, row);
    EXPECT_DOUBLE_EQ(result.prediction, model->forest.Predict(row));
    EXPECT_FALSE(result.local.has_value());
  }
  batcher.Stop();
}

TEST(BatcherTest, DisabledModeExecutesInline) {
  auto model = std::make_shared<ServedModel>();
  model->forest = TrainSmallForest();
  RequestBatcher::Options options;
  options.enabled = false;
  RequestBatcher batcher(options);
  std::vector<double> row(model->forest.num_features(), 1.0);
  EXPECT_DOUBLE_EQ(batcher.Predict(model, row).prediction,
                   model->forest.Predict(row));
}

TEST(BatcherTest, ConcurrentPredictionsAllAnswered) {
  auto model = std::make_shared<ServedModel>();
  model->forest = TrainSmallForest();
  RequestBatcher::Options options;
  options.max_batch = 8;
  RequestBatcher batcher(options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        std::vector<double> row(model->forest.num_features());
        for (auto& v : row) v = rng.Uniform() * 5.0;
        auto result = batcher.Predict(model, row);
        if (result.prediction != model->forest.Predict(row)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  batcher.Stop();  // idempotent with the destructor
}

TEST(BatcherTest, ExplainMatchesExplainInstance) {
  auto model = std::make_shared<ServedModel>();
  model->forest = TrainSmallForest();
  model->hash = model->forest.ContentHash();
  GefConfig config = TinyGefConfig();
  std::shared_ptr<const GefExplanation> surrogate(
      ExplainForest(model->forest, config).release());
  ASSERT_NE(surrogate, nullptr);

  RequestBatcher batcher(RequestBatcher::Options{});
  std::vector<double> row(model->forest.num_features(), 0.5);
  auto result = batcher.Explain(model, surrogate, row, 0.05);
  ASSERT_TRUE(result.local.has_value());

  LocalExplanation direct =
      ExplainInstance(*surrogate, model->forest, row, 0.05);
  EXPECT_DOUBLE_EQ(result.local->gam_prediction, direct.gam_prediction);
  EXPECT_DOUBLE_EQ(result.local->forest_prediction,
                   direct.forest_prediction);
  ASSERT_EQ(result.local->terms.size(), direct.terms.size());
  for (size_t i = 0; i < direct.terms.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.local->terms[i].contribution,
                     direct.terms[i].contribution);
  }
}

// ---------------------------------------------------------------------
// serve/handlers — endpoint logic over in-memory requests
// ---------------------------------------------------------------------

class HandlersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics::ResetAllForTest();
    ASSERT_TRUE(registry_.AddModel("census", TrainSmallForest()).ok());
    context_.registry = &registry_;
    context_.cache = &cache_;
    context_.batcher = &batcher_;
    context_.default_config = TinyGefConfig();
    num_features_ = registry_.Get("census")->forest.num_features();
  }

  HttpResponse Call(const std::string& method, const std::string& target,
                    const std::string& body = "") {
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    request.body = body;
    return HandleRequest(context_, request);
  }

  std::string RowLiteral() const {
    std::vector<double> row(num_features_, 0.5);
    return serve::JsonNumberArray(row);
  }

  ModelRegistry registry_;
  SurrogateCache cache_{4};
  RequestBatcher batcher_{RequestBatcher::Options{}};
  ServeContext context_;
  size_t num_features_ = 0;
};

TEST_F(HandlersTest, HealthzAndModelsAndMetrics) {
  auto health = Call("GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("ok"), std::string::npos);

  auto models = Call("GET", "/v1/models");
  EXPECT_EQ(models.status, 200);
  auto parsed = ParseJson(models.body);
  ASSERT_TRUE(parsed.ok());
  const Json* list = parsed->Find("models");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 1u);
  EXPECT_EQ(list->array[0].Find("name")->str, "census");
  EXPECT_EQ(list->array[0].Find("hash")->str,
            HashToHex(registry_.Get("census")->hash));

  auto metrics = Call("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; charset=utf-8");
  EXPECT_NE(metrics.body.find("serve.requests.healthz"),
            std::string::npos);
}

TEST_F(HandlersTest, PredictSingleRowAndBatchRows) {
  auto single =
      Call("POST", "/v1/predict", "{\"row\": " + RowLiteral() + "}");
  ASSERT_EQ(single.status, 200) << single.body;
  auto parsed = ParseJson(single.body);
  ASSERT_TRUE(parsed.ok());
  std::vector<double> row(num_features_, 0.5);
  EXPECT_NEAR(parsed->Find("prediction")->number,
              registry_.Get("census")->forest.Predict(row), 1e-9);
  EXPECT_EQ(parsed->Find("model")->str, "census");

  auto batch = Call("POST", "/v1/predict",
                    "{\"rows\": [" + RowLiteral() + ", " + RowLiteral() +
                        "]}");
  ASSERT_EQ(batch.status, 200) << batch.body;
  auto batch_parsed = ParseJson(batch.body);
  ASSERT_TRUE(batch_parsed.ok());
  ASSERT_EQ(batch_parsed->Find("predictions")->array.size(), 2u);
}

TEST_F(HandlersTest, PredictRejectsBadInput) {
  EXPECT_EQ(Call("POST", "/v1/predict", "{not json").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{}").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\": [1, 2]}").status, 400)
      << "wrong row width must be 400";
  EXPECT_EQ(Call("POST", "/v1/predict",
                 "{\"row\": " + RowLiteral() +
                     ", \"model\": \"missing\"}")
                .status,
            404);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\": [\"a\"]}").status, 400);
}

TEST_F(HandlersTest, RoutingErrors) {
  EXPECT_EQ(Call("GET", "/v1/unknown").status, 404);
  EXPECT_EQ(Call("GET", "/v1/predict").status, 405);
  EXPECT_EQ(Call("POST", "/healthz").status, 405);
  // Error bodies are JSON with an "error" member.
  auto missing = Call("GET", "/nope");
  auto parsed = ParseJson(missing.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->Find("error"), nullptr);
}

TEST_F(HandlersTest, ExplainFitsOnceThenHitsCache) {
  const std::string body = "{\"row\": " + RowLiteral() + "}";
  auto first = Call("POST", "/v1/explain", body);
  ASSERT_EQ(first.status, 200) << first.body;
  auto parsed = ParseJson(first.body);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("terms"), nullptr);
  EXPECT_GT(parsed->Find("terms")->array.size(), 0u);
  EXPECT_NE(parsed->Find("gam_prediction"), nullptr);
  EXPECT_NE(parsed->Find("forest_prediction"), nullptr);

  auto second = Call("POST", "/v1/explain", body);
  ASSERT_EQ(second.status, 200);
  // The amortization contract: one fit, repeat queries hit the cache.
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 1u);
  EXPECT_GE(obs::metrics::GetCounter("serve.surrogate_cache.hits").Value(),
            1u);
}

TEST_F(HandlersTest, ExplainRejectsBadStepFractionAndConfig) {
  const std::string row = RowLiteral();
  EXPECT_EQ(Call("POST", "/v1/explain",
                 "{\"row\": " + row + ", \"step_fraction\": 0}")
                .status,
            400);
  EXPECT_EQ(Call("POST", "/v1/explain",
                 "{\"row\": " + row + ", \"step_fraction\": 1.5}")
                .status,
            400);
  EXPECT_EQ(Call("POST", "/v1/explain",
                 "{\"row\": " + row +
                     ", \"config\": {\"unknown_knob\": 1}}")
                .status,
            400);
}

TEST_F(HandlersTest, PreloadedExplanationSkipsCache) {
  Forest forest = TrainSmallForest();
  GefConfig config = TinyGefConfig();
  std::shared_ptr<const GefExplanation> preloaded(
      ExplainForest(forest, config).release());
  ASSERT_NE(preloaded, nullptr);
  ASSERT_TRUE(registry_
                  .AddModel("prefit", std::move(forest), "", preloaded)
                  .ok());

  auto response = Call("POST", "/v1/explain",
                       "{\"row\": " + RowLiteral() +
                           ", \"model\": \"prefit\"}");
  ASSERT_EQ(response.status, 200) << response.body;
  // Served from the preloaded surrogate: no pipeline fit ran.
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 0u);
}

// ---------------------------------------------------------------------
// Concurrency stress: registry hot-swap + cache + batcher under TSan
// (satellite (c): run with GEF_SANITIZE=thread in the CI matrix).
// ---------------------------------------------------------------------

TEST(ServeConcurrencyTest, RegistryCacheBatcherStress) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.AddModel("hot", TrainSmallForest(1)).ok());
  Forest replacement_a = TrainSmallForest(2);
  Forest replacement_b = TrainSmallForest(3);
  SurrogateCache cache(2);
  RequestBatcher::Options options;
  options.max_batch = 8;
  RequestBatcher batcher(options);
  GefConfig config = TinyGefConfig();

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};

  // Swapper: replaces "hot" in a tight loop (copying a trained forest
  // each round) — readers must never observe a torn model.
  std::thread swapper([&] {
    int round = 0;
    while (!stop.load()) {
      Forest copy = (round++ % 2 == 0) ? replacement_a : replacement_b;
      if (!registry.AddModel("hot", std::move(copy)).ok()) {
        errors.fetch_add(1);
      }
    }
  });

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(500 + static_cast<uint64_t>(t));
      for (int i = 0; i < 60; ++i) {
        auto model = registry.Get("hot");
        if (model == nullptr) {
          errors.fetch_add(1);
          continue;
        }
        std::vector<double> row(model->forest.num_features());
        for (auto& v : row) v = rng.Uniform() * 5.0;
        auto result = batcher.Predict(model, row);
        if (result.prediction != model->forest.Predict(row)) {
          errors.fetch_add(1);
        }
        // Cheap synthetic fits keyed by the live model hash exercise
        // single-flight + LRU under contention.
        auto surrogate = cache.GetOrFit(model->hash, config, [] {
          return std::make_unique<GefExplanation>();
        });
        if (surrogate == nullptr) errors.fetch_add(1);
        if (i % 16 == 0) (void)registry.List();
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  swapper.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace gef
