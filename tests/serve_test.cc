// Tests for the serving subsystem (DESIGN.md §3.14): content hashing,
// the always-on metrics registry, the JSON + HTTP wire formats, the
// shutdown/file-guard plumbing, the model registry, the single-flight
// surrogate cache, the request batcher and the endpoint handlers.
//
// Handler/cache/batcher logic runs on in-memory buffers; the epoll
// reactor (PR 9) is additionally exercised over real loopback sockets
// (ReactorServeTest) — still in-process, no child processes, so the
// whole suite is TSan/ASan-friendly. The full binary is exercised
// end-to-end by tools/serve_smoke.sh.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "forest/serialization.h"
#include "gef/local_explanation.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/handlers.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/model_registry.h"
#include "serve/reactor.h"
#include "serve/server.h"
#include "util/shutdown.h"
#include "serve/surrogate_cache.h"
#include "stats/rng.h"
#include "util/hash.h"

namespace gef {
namespace {

using serve::HttpLimits;
using serve::HttpRequest;
using serve::HttpRequestParser;
using serve::HttpResponse;
using serve::Json;
using serve::ModelRegistry;
using serve::ParseJson;
using serve::RequestBatcher;
using serve::ServeContext;
using serve::ServedModel;
using serve::SurrogateCache;

Forest TrainSmallForest(uint64_t seed = 111) {
  Rng rng(seed);
  Dataset data = MakeGPrimeDataset(400, &rng);
  GbdtConfig config;
  config.num_trees = 8;
  config.num_leaves = 6;
  config.min_samples_leaf = 5;
  return TrainGbdt(data, nullptr, config).forest;
}

/// A deliberately tiny pipeline config so explain paths stay fast.
GefConfig TinyGefConfig() {
  GefConfig config;
  config.num_univariate = 2;
  config.num_bivariate = 0;
  config.k = 8;
  config.num_samples = 600;
  config.spline_basis = 8;
  config.seed = 5;
  return config;
}

// ---------------------------------------------------------------------
// util/hash
// ---------------------------------------------------------------------

TEST(HashTest, Fnv1aKnownVectors) {
  // Published FNV-1a 64-bit vectors.
  EXPECT_EQ(HashFnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(HashFnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(HashFnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, PointerAndStringViewAgree) {
  const std::string text = "serving layer";
  EXPECT_EQ(HashFnv1a64(text.data(), text.size()),
            HashFnv1a64(std::string_view(text)));
}

TEST(HashTest, CombineIsOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(1, 2), 3);
  uint64_t b = HashCombine(HashCombine(1, 3), 2);
  EXPECT_NE(a, b);
}

TEST(HashTest, CombineDoubleNormalizesSignedZero) {
  EXPECT_EQ(HashCombineDouble(7, 0.0), HashCombineDouble(7, -0.0));
  EXPECT_NE(HashCombineDouble(7, 0.0), HashCombineDouble(7, 1.0));
}

TEST(HashTest, HexRoundTrip) {
  const uint64_t value = 0x0123456789abcdefULL;
  std::string hex = HashToHex(value);
  EXPECT_EQ(hex, "0123456789abcdef");
  uint64_t parsed = 0;
  ASSERT_TRUE(HashFromHex(hex, &parsed));
  EXPECT_EQ(parsed, value);
}

TEST(HashTest, HexRejectsMalformed) {
  uint64_t out = 0;
  EXPECT_FALSE(HashFromHex("", &out));
  EXPECT_FALSE(HashFromHex("123", &out));                  // too short
  EXPECT_FALSE(HashFromHex("0123456789abcdeg", &out));     // bad digit
  EXPECT_FALSE(HashFromHex("0123456789abcdef0", &out));    // too long
}

TEST(HashTest, ForestContentHashIsSerializationStable) {
  Forest forest = TrainSmallForest();
  uint64_t original = forest.ContentHash();
  auto restored = ForestFromString(ForestToString(forest));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ContentHash(), original);
  // A different forest must (with overwhelming probability) differ.
  EXPECT_NE(TrainSmallForest(222).ContentHash(), original);
}

// ---------------------------------------------------------------------
// obs/metrics
// ---------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  obs::metrics::ResetAllForTest();
  auto& counter = obs::metrics::GetCounter("test.requests");
  counter.Add();
  counter.Add(4);
  EXPECT_EQ(counter.Value(), 5u);
  // Same name resolves to the same cell.
  EXPECT_EQ(&obs::metrics::GetCounter("test.requests"), &counter);

  obs::metrics::GetGauge("test.resident").Set(3.5);
  EXPECT_DOUBLE_EQ(obs::metrics::GetGauge("test.resident").Value(), 3.5);

  auto& histogram = obs::metrics::GetHistogram("test.latency");
  for (int i = 1; i <= 100; ++i) histogram.Observe(i * 0.001);
  auto snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.001);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.1);
  // Geometric buckets: quantiles are approximate; demand sane ordering.
  EXPECT_LE(snapshot.p50, snapshot.p90);
  EXPECT_LE(snapshot.p90, snapshot.p99);
  EXPECT_GT(snapshot.p50, 0.0);
  EXPECT_LE(snapshot.p99, snapshot.max * 2.0);
}

TEST(MetricsTest, RenderTextListsEveryMetric) {
  obs::metrics::ResetAllForTest();
  obs::metrics::GetCounter("render.count").Add(2);
  obs::metrics::GetGauge("render.gauge").Set(1.0);
  obs::metrics::GetHistogram("render.hist").Observe(0.5);
  std::string text = obs::metrics::RenderText();
  EXPECT_NE(text.find("render.count 2"), std::string::npos);
  EXPECT_NE(text.find("render.gauge"), std::string::npos);
  EXPECT_NE(text.find("render.hist.count 1"), std::string::npos);
  EXPECT_NE(text.find("render.hist.p99"), std::string::npos);
}

TEST(MetricsTest, ConcurrentObserveIsConsistent) {
  obs::metrics::ResetAllForTest();
  auto& counter = obs::metrics::GetCounter("stress.count");
  auto& histogram = obs::metrics::GetHistogram("stress.hist");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Observe(1e-4 * (t + 1));
        if (i % 64 == 0) {
          // Concurrent scrape while writers are active — the contract
          // /metrics depends on.
          (void)obs::metrics::RenderText();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram.Snapshot().count,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MetricsTest, EmptyHistogramSnapshotIsZeroed) {
  obs::metrics::ResetAllForTest();
  auto snapshot = obs::metrics::GetHistogram("empty.hist").Snapshot();
  // min_/max_ live at +/-infinity between observations (the CAS-fold
  // identity); an empty snapshot must render that as zeros, never leak
  // the sentinels into /metrics.
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
}

TEST(MetricsTest, HistogramMinMaxSurviveFirstObservationRace) {
  // Regression test for a seeding race: Observe() used to special-case
  // the first observation with plain min_/max_ stores, which could
  // overwrite a racing thread's already-CAS-folded better extremum
  // (thread A wins the count 0->1 increment, thread B folds its smaller
  // value first, A's seed store clobbers it). The fix seeds min_/max_
  // at +/-infinity so every observation goes through the CAS fold.
  // Repeat the empty->stampede cycle so the first-observation window is
  // exercised many times.
  auto& histogram = obs::metrics::GetHistogram("race.hist");
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    obs::metrics::ResetAllForTest();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      // Thread t observes t+1: the true min (1.0) and max (kThreads)
      // are each raced against the other threads' first observations.
      threads.emplace_back(
          [&histogram, t] { histogram.Observe(static_cast<double>(t + 1)); });
    }
    for (auto& thread : threads) thread.join();
    auto snapshot = histogram.Snapshot();
    ASSERT_EQ(snapshot.count, static_cast<uint64_t>(kThreads));
    ASSERT_DOUBLE_EQ(snapshot.min, 1.0) << "lost min in round " << round;
    ASSERT_DOUBLE_EQ(snapshot.max, static_cast<double>(kThreads))
        << "lost max in round " << round;
  }
}

// ---------------------------------------------------------------------
// serve/json
// ---------------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  auto parsed = ParseJson(
      R"({"row": [1, -2.5, 3e2], "model": "census", "opts": {"deep": true},
          "null_member": null, "flag": false})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& json = *parsed;
  ASSERT_TRUE(json.is_object());
  const Json* row = json.Find("row");
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(row->is_array());
  ASSERT_EQ(row->array.size(), 3u);
  EXPECT_DOUBLE_EQ(row->array[1].number, -2.5);
  EXPECT_DOUBLE_EQ(row->array[2].number, 300.0);
  EXPECT_EQ(json.Find("model")->str, "census");
  EXPECT_TRUE(json.Find("opts")->Find("deep")->boolean);
  EXPECT_EQ(json.Find("null_member")->type, Json::Type::kNull);
  EXPECT_EQ(json.Find("missing"), nullptr);
}

TEST(JsonTest, ParsesStringEscapes) {
  auto parsed = ParseJson(R"({"s": "a\"b\\c\n\tA"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s")->str, "a\"b\\c\n\tA");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{not json").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(ParseJson("[1, 2] trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\"}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("01").ok());
}

TEST(JsonTest, DepthLimitBoundsRecursion) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep, 64).ok());
  EXPECT_TRUE(ParseJson("[[[[1]]]]", 8).ok());
}

TEST(JsonTest, NumberAndEscapeRendering) {
  EXPECT_EQ(serve::JsonNumberText(1.5), "1.5");
  EXPECT_EQ(serve::JsonNumberText(std::nan("")), "null");
  EXPECT_EQ(serve::JsonEscapeString("a\"b\\\n"), "a\\\"b\\\\\\n");
  EXPECT_EQ(serve::JsonNumberArray({1.0, 2.5}), "[1,2.5]");
}

TEST(JsonTest, FuzzedInputsNeverCrash) {
  Rng rng(991);
  const std::string seed_doc =
      R"({"row": [1.0, 2.0], "model": "m", "config": {"k": 16}})";
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string doc = seed_doc;
    int num_edits = 1 + static_cast<int>(rng.Uniform() * 4);
    for (int e = 0; e < num_edits; ++e) {
      size_t pos = static_cast<size_t>(rng.Uniform() * doc.size());
      doc[pos] = static_cast<char>(rng.Uniform() * 256);
    }
    auto parsed = ParseJson(doc);  // must return, never crash
    (void)parsed;
  }
}

// ---------------------------------------------------------------------
// serve/http
// ---------------------------------------------------------------------

TEST(HttpTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  auto state = parser.Consume("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_EQ(parser.request().headers.at("host"), "x");
  EXPECT_FALSE(parser.request().WantsClose());
}

TEST(HttpTest, ParsesPostBodyAndLowercasesHeaders) {
  HttpRequestParser parser;
  auto state = parser.Consume(
      "POST /v1/predict HTTP/1.1\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 13\r\n\r\n"
      "{\"row\": [1]}x");
  ASSERT_EQ(state, HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().body, "{\"row\": [1]}x");
  EXPECT_EQ(parser.request().headers.at("content-type"),
            "application/json");
}

TEST(HttpTest, ByteAtATimeFeeding) {
  const std::string wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  HttpRequestParser parser;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.Consume(wire.substr(i, 1)),
              HttpRequestParser::State::kNeedMore)
        << "at byte " << i;
  }
  ASSERT_EQ(parser.Consume(wire.substr(wire.size() - 1)),
            HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpTest, PipelinedRequestsSurviveReset) {
  HttpRequestParser parser;
  auto state = parser.Consume(
      "GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/healthz");
  // Reset must re-parse the buffered second request immediately.
  ASSERT_EQ(parser.Reset(), HttpRequestParser::State::kDone);
  EXPECT_EQ(parser.request().target, "/metrics");
  EXPECT_EQ(parser.Reset(), HttpRequestParser::State::kNeedMore);
}

TEST(HttpTest, TruncatedRequestStaysIncomplete) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("POST /v1/predict HTTP/1.1\r\nContent-Le"),
            HttpRequestParser::State::kNeedMore);
  EXPECT_EQ(parser.Consume("ngth: 10\r\n\r\nabc"),
            HttpRequestParser::State::kNeedMore);
}

TEST(HttpTest, OversizedHeadersAre431) {
  HttpLimits limits;
  limits.max_header_bytes = 128;
  HttpRequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
  wire += std::string(256, 'a');
  ASSERT_EQ(parser.Consume(wire), HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpTest, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpRequestParser parser(limits);
  auto state = parser.Consume(
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpTest, TransferEncodingIs501) {
  HttpRequestParser parser;
  auto state = parser.Consume(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpTest, UnsupportedVersionIs505) {
  HttpRequestParser parser;
  auto state = parser.Consume("GET / HTTP/2.0\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpTest, MalformedRequestLineIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("garbage\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);

  HttpRequestParser parser2;
  ASSERT_EQ(parser2.Consume("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"),
            HttpRequestParser::State::kError);
  EXPECT_EQ(parser2.error_status(), 400);
}

TEST(HttpTest, ConnectionCloseSemantics) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume(
                "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            HttpRequestParser::State::kDone);
  EXPECT_TRUE(parser.request().WantsClose());

  HttpRequestParser parser10;
  ASSERT_EQ(parser10.Consume("GET / HTTP/1.0\r\n\r\n"),
            HttpRequestParser::State::kDone);
  EXPECT_TRUE(parser10.request().WantsClose());
}

TEST(HttpTest, SerializeResponseCarriesContentLength) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  std::string wire = serve::SerializeHttpResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  HttpResponse error = serve::MakeErrorResponse(404, "nope");
  EXPECT_EQ(error.status, 404);
  EXPECT_NE(error.body.find("nope"), std::string::npos);
}

TEST(HttpTest, FuzzedWireBytesNeverCrash) {
  Rng rng(4242);
  const std::string seed_wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 12\r\n\r\n"
      "{\"row\":[1]}x";
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string wire = seed_wire;
    int num_edits = 1 + static_cast<int>(rng.Uniform() * 6);
    for (int e = 0; e < num_edits; ++e) {
      size_t pos = static_cast<size_t>(rng.Uniform() * wire.size());
      wire[pos] = static_cast<char>(rng.Uniform() * 256);
    }
    HttpRequestParser parser;
    // Feed in two random-sized chunks to cover the incremental path.
    size_t split = static_cast<size_t>(rng.Uniform() * wire.size());
    parser.Consume(wire.substr(0, split));
    auto state = parser.Consume(wire.substr(split));
    if (state == HttpRequestParser::State::kError) {
      EXPECT_GE(parser.error_status(), 400);
      EXPECT_LT(parser.error_status(), 600);
    }
  }
}

// ---------------------------------------------------------------------
// util/shutdown
// ---------------------------------------------------------------------

TEST(ShutdownTest, GuardedFileIsUnlinkedOnSignalPath) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "gef_serve_test";
  fs::create_directories(dir);
  fs::path partial = dir / "partial_model.txt";
  {
    ScopedFileGuard guard(partial.string());
    std::FILE* f = std::fopen(partial.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("half-written", f);
    std::fclose(f);
    ASSERT_TRUE(fs::exists(partial));
    internal::UnlinkGuardedFilesForTest();
    EXPECT_FALSE(fs::exists(partial));
  }
}

TEST(ShutdownTest, CommittedFileSurvives) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "gef_serve_test";
  fs::create_directories(dir);
  fs::path done = dir / "committed_model.txt";
  {
    ScopedFileGuard guard(done.string());
    std::FILE* f = std::fopen(done.string().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("complete", f);
    std::fclose(f);
    guard.Commit();
    internal::UnlinkGuardedFilesForTest();
  }
  EXPECT_TRUE(fs::exists(done));
  fs::remove(done);
}

TEST(ShutdownTest, RequestShutdownSetsFlagAndWakesPipe) {
  InstallShutdownHandler();
  internal::ResetShutdownStateForTest();
  EXPECT_FALSE(ShutdownRequested());
  EnableDrainMode();
  RequestShutdown();
  EXPECT_TRUE(ShutdownRequested());
  EXPECT_GE(ShutdownWakeFd(), 0);
  internal::ResetShutdownStateForTest();
  EXPECT_FALSE(ShutdownRequested());
}

// ---------------------------------------------------------------------
// serve/model_registry
// ---------------------------------------------------------------------

TEST(ModelRegistryTest, AddGetListRemove) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.AddModel("a", TrainSmallForest(1)).ok());
  ASSERT_TRUE(registry.AddModel("b", TrainSmallForest(2)).ok());
  EXPECT_EQ(registry.size(), 2u);

  auto a = registry.Get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "a");
  EXPECT_EQ(a->hash, a->forest.ContentHash());
  EXPECT_EQ(registry.Get("missing"), nullptr);

  // Two models: GetOnly is ambiguous.
  EXPECT_EQ(registry.GetOnly(), nullptr);
  auto list = registry.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0]->name, "a");
  EXPECT_EQ(list[1]->name, "b");

  EXPECT_TRUE(registry.Remove("b"));
  EXPECT_FALSE(registry.Remove("b"));
  ASSERT_NE(registry.GetOnly(), nullptr);
  EXPECT_EQ(registry.GetOnly()->name, "a");
}

TEST(ModelRegistryTest, HotSwapPreservesInFlightSnapshot) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.AddModel("m", TrainSmallForest(1)).ok());
  auto before = registry.Get("m");
  ASSERT_TRUE(registry.AddModel("m", TrainSmallForest(2)).ok());
  auto after = registry.Get("m");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before.get(), after.get());
  EXPECT_NE(before->hash, after->hash);
  // The old snapshot still answers predictions (hot-swap contract).
  std::vector<double> row(before->forest.num_features(), 0.5);
  (void)before->forest.Predict(row);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistryTest, LoadModelHashMatchesInMemoryHash) {
  namespace fs = std::filesystem;
  Forest forest = TrainSmallForest(3);
  fs::path path =
      fs::temp_directory_path() / "gef_serve_test" / "registry_model.txt";
  fs::create_directories(path.parent_path());
  ASSERT_TRUE(SaveForest(forest, path.string()).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadModel("disk", path.string()).ok());
  auto model = registry.Get("disk");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->hash, forest.ContentHash());
  EXPECT_EQ(model->source_path, path.string());

  EXPECT_FALSE(registry.LoadModel("bad", "/nonexistent/model.txt").ok());
  EXPECT_EQ(registry.Get("bad"), nullptr);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// serve/surrogate_cache
// ---------------------------------------------------------------------

TEST(SurrogateCacheTest, ConfigFingerprintSeparatesConfigs) {
  GefConfig base = TinyGefConfig();
  GefConfig changed = base;
  changed.num_univariate += 1;
  EXPECT_NE(serve::GefConfigFingerprint(base),
            serve::GefConfigFingerprint(changed));
  GefConfig lambda_changed = base;
  lambda_changed.lambda_grid.push_back(1e3);
  EXPECT_NE(serve::GefConfigFingerprint(base),
            serve::GefConfigFingerprint(lambda_changed));
  EXPECT_EQ(serve::GefConfigFingerprint(base),
            serve::GefConfigFingerprint(TinyGefConfig()));
}

TEST(SurrogateCacheTest, SingleFlightFitsOncePerKey) {
  obs::metrics::ResetAllForTest();
  Forest forest = TrainSmallForest();
  GefConfig config = TinyGefConfig();
  SurrogateCache cache(4);
  std::atomic<int> fit_calls{0};

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const GefExplanation>> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = cache.GetOrFit(forest.ContentHash(), config, [&] {
        fit_calls.fetch_add(1);
        return ExplainForest(forest, config);
      });
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(fit_calls.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 1u);
  EXPECT_GE(obs::metrics::GetCounter("serve.surrogate_cache.hits").Value()
                + obs::metrics::GetCounter("serve.surrogate_cache.misses")
                      .Value(),
            static_cast<uint64_t>(kThreads));
}

TEST(SurrogateCacheTest, DistinctKeysFitSeparately) {
  SurrogateCache cache(4);
  std::atomic<int> fit_calls{0};
  auto fake_fit = [&] {
    fit_calls.fetch_add(1);
    return std::make_unique<GefExplanation>();
  };
  GefConfig config = TinyGefConfig();
  (void)cache.GetOrFit(1, config, fake_fit);
  (void)cache.GetOrFit(2, config, fake_fit);
  GefConfig other = config;
  other.k *= 2;
  (void)cache.GetOrFit(1, other, fake_fit);
  (void)cache.GetOrFit(1, config, fake_fit);  // hit
  EXPECT_EQ(fit_calls.load(), 3);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SurrogateCacheTest, LruEvictionRefitsColdKey) {
  SurrogateCache cache(2);
  std::atomic<int> fit_calls{0};
  auto fake_fit = [&] {
    fit_calls.fetch_add(1);
    return std::make_unique<GefExplanation>();
  };
  GefConfig config = TinyGefConfig();
  (void)cache.GetOrFit(1, config, fake_fit);
  (void)cache.GetOrFit(2, config, fake_fit);
  (void)cache.GetOrFit(1, config, fake_fit);  // refresh key 1
  (void)cache.GetOrFit(3, config, fake_fit);  // evicts key 2 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.GetOrFit(1, config, fake_fit);  // still resident
  EXPECT_EQ(fit_calls.load(), 3);
  (void)cache.GetOrFit(2, config, fake_fit);  // evicted -> refit
  EXPECT_EQ(fit_calls.load(), 4);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SurrogateCacheTest, FailedFitIsCachedAsNull) {
  SurrogateCache cache(2);
  std::atomic<int> fit_calls{0};
  GefConfig config = TinyGefConfig();
  auto failing_fit = [&]() -> std::unique_ptr<GefExplanation> {
    fit_calls.fetch_add(1);
    return nullptr;
  };
  EXPECT_EQ(cache.GetOrFit(9, config, failing_fit), nullptr);
  EXPECT_EQ(cache.GetOrFit(9, config, failing_fit), nullptr);
  EXPECT_EQ(fit_calls.load(), 1);  // deterministic failure: no retry
}

// ---------------------------------------------------------------------
// serve/batcher
// ---------------------------------------------------------------------

TEST(BatcherTest, PredictMatchesDirectForestCall) {
  auto model = std::make_shared<ServedModel>();
  model->name = "m";
  model->forest = TrainSmallForest();
  model->hash = model->forest.ContentHash();

  RequestBatcher::Options options;
  RequestBatcher batcher(options);
  Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> row(model->forest.num_features());
    for (auto& v : row) v = rng.Uniform() * 5.0;
    auto result = batcher.Predict(model, row);
    EXPECT_DOUBLE_EQ(result.prediction, model->forest.Predict(row));
    EXPECT_FALSE(result.local.has_value());
  }
  batcher.Stop();
}

TEST(BatcherTest, DisabledModeExecutesInline) {
  auto model = std::make_shared<ServedModel>();
  model->forest = TrainSmallForest();
  RequestBatcher::Options options;
  options.enabled = false;
  RequestBatcher batcher(options);
  std::vector<double> row(model->forest.num_features(), 1.0);
  EXPECT_DOUBLE_EQ(batcher.Predict(model, row).prediction,
                   model->forest.Predict(row));
}

TEST(BatcherTest, ConcurrentPredictionsAllAnswered) {
  auto model = std::make_shared<ServedModel>();
  model->forest = TrainSmallForest();
  RequestBatcher::Options options;
  options.max_batch = 8;
  RequestBatcher batcher(options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        std::vector<double> row(model->forest.num_features());
        for (auto& v : row) v = rng.Uniform() * 5.0;
        auto result = batcher.Predict(model, row);
        if (result.prediction != model->forest.Predict(row)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  batcher.Stop();  // idempotent with the destructor
}

TEST(BatcherTest, ExplainMatchesExplainInstance) {
  auto model = std::make_shared<ServedModel>();
  model->forest = TrainSmallForest();
  model->hash = model->forest.ContentHash();
  GefConfig config = TinyGefConfig();
  std::shared_ptr<const GefExplanation> surrogate(
      ExplainForest(model->forest, config).release());
  ASSERT_NE(surrogate, nullptr);

  RequestBatcher batcher(RequestBatcher::Options{});
  std::vector<double> row(model->forest.num_features(), 0.5);
  auto result = batcher.Explain(model, surrogate, row, 0.05);
  ASSERT_TRUE(result.local.has_value());

  LocalExplanation direct =
      ExplainInstance(*surrogate, model->forest, row, 0.05);
  EXPECT_DOUBLE_EQ(result.local->gam_prediction, direct.gam_prediction);
  EXPECT_DOUBLE_EQ(result.local->forest_prediction,
                   direct.forest_prediction);
  ASSERT_EQ(result.local->terms.size(), direct.terms.size());
  for (size_t i = 0; i < direct.terms.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.local->terms[i].contribution,
                     direct.terms[i].contribution);
  }
}

// ---------------------------------------------------------------------
// serve/handlers — endpoint logic over in-memory requests
// ---------------------------------------------------------------------

class HandlersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics::ResetAllForTest();
    ASSERT_TRUE(registry_.AddModel("census", TrainSmallForest()).ok());
    context_.registry = &registry_;
    context_.cache = &cache_;
    context_.batcher = &batcher_;
    context_.default_config = TinyGefConfig();
    num_features_ = registry_.Get("census")->forest.num_features();
  }

  HttpResponse Call(const std::string& method, const std::string& target,
                    const std::string& body = "") {
    HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    request.body = body;
    return HandleRequest(context_, request);
  }

  std::string RowLiteral() const {
    std::vector<double> row(num_features_, 0.5);
    return serve::JsonNumberArray(row);
  }

  ModelRegistry registry_;
  SurrogateCache cache_{4};
  RequestBatcher batcher_{RequestBatcher::Options{}};
  ServeContext context_;
  size_t num_features_ = 0;
};

TEST_F(HandlersTest, HealthzAndModelsAndMetrics) {
  auto health = Call("GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("ok"), std::string::npos);

  auto models = Call("GET", "/v1/models");
  EXPECT_EQ(models.status, 200);
  auto parsed = ParseJson(models.body);
  ASSERT_TRUE(parsed.ok());
  const Json* list = parsed->Find("models");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 1u);
  EXPECT_EQ(list->array[0].Find("name")->str, "census");
  EXPECT_EQ(list->array[0].Find("hash")->str,
            HashToHex(registry_.Get("census")->hash));

  auto metrics = Call("GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; charset=utf-8");
  EXPECT_NE(metrics.body.find("serve.requests.healthz"),
            std::string::npos);
}

TEST_F(HandlersTest, PredictSingleRowAndBatchRows) {
  auto single =
      Call("POST", "/v1/predict", "{\"row\": " + RowLiteral() + "}");
  ASSERT_EQ(single.status, 200) << single.body;
  auto parsed = ParseJson(single.body);
  ASSERT_TRUE(parsed.ok());
  std::vector<double> row(num_features_, 0.5);
  EXPECT_NEAR(parsed->Find("prediction")->number,
              registry_.Get("census")->forest.Predict(row), 1e-9);
  EXPECT_EQ(parsed->Find("model")->str, "census");

  auto batch = Call("POST", "/v1/predict",
                    "{\"rows\": [" + RowLiteral() + ", " + RowLiteral() +
                        "]}");
  ASSERT_EQ(batch.status, 200) << batch.body;
  auto batch_parsed = ParseJson(batch.body);
  ASSERT_TRUE(batch_parsed.ok());
  ASSERT_EQ(batch_parsed->Find("predictions")->array.size(), 2u);
}

TEST_F(HandlersTest, PredictRejectsBadInput) {
  EXPECT_EQ(Call("POST", "/v1/predict", "{not json").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{}").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\": [1, 2]}").status, 400)
      << "wrong row width must be 400";
  EXPECT_EQ(Call("POST", "/v1/predict",
                 "{\"row\": " + RowLiteral() +
                     ", \"model\": \"missing\"}")
                .status,
            404);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\": [\"a\"]}").status, 400);
}

TEST_F(HandlersTest, RoutingErrors) {
  EXPECT_EQ(Call("GET", "/v1/unknown").status, 404);
  EXPECT_EQ(Call("GET", "/v1/predict").status, 405);
  EXPECT_EQ(Call("POST", "/healthz").status, 405);
  // Error bodies are JSON with an "error" member.
  auto missing = Call("GET", "/nope");
  auto parsed = ParseJson(missing.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE(parsed->Find("error"), nullptr);
}

TEST_F(HandlersTest, ExplainFitsOnceThenHitsCache) {
  const std::string body = "{\"row\": " + RowLiteral() + "}";
  auto first = Call("POST", "/v1/explain", body);
  ASSERT_EQ(first.status, 200) << first.body;
  auto parsed = ParseJson(first.body);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("terms"), nullptr);
  EXPECT_GT(parsed->Find("terms")->array.size(), 0u);
  EXPECT_NE(parsed->Find("gam_prediction"), nullptr);
  EXPECT_NE(parsed->Find("forest_prediction"), nullptr);

  auto second = Call("POST", "/v1/explain", body);
  ASSERT_EQ(second.status, 200);
  // The amortization contract: one fit, repeat queries hit the cache.
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 1u);
  EXPECT_GE(obs::metrics::GetCounter("serve.surrogate_cache.hits").Value(),
            1u);
}

TEST_F(HandlersTest, ExplainRejectsBadStepFractionAndConfig) {
  const std::string row = RowLiteral();
  EXPECT_EQ(Call("POST", "/v1/explain",
                 "{\"row\": " + row + ", \"step_fraction\": 0}")
                .status,
            400);
  EXPECT_EQ(Call("POST", "/v1/explain",
                 "{\"row\": " + row + ", \"step_fraction\": 1.5}")
                .status,
            400);
  EXPECT_EQ(Call("POST", "/v1/explain",
                 "{\"row\": " + row +
                     ", \"config\": {\"unknown_knob\": 1}}")
                .status,
            400);
}

TEST_F(HandlersTest, PreloadedExplanationSkipsCache) {
  Forest forest = TrainSmallForest();
  GefConfig config = TinyGefConfig();
  std::shared_ptr<const GefExplanation> preloaded(
      ExplainForest(forest, config).release());
  ASSERT_NE(preloaded, nullptr);
  ASSERT_TRUE(registry_
                  .AddModel("prefit", std::move(forest), "", preloaded)
                  .ok());

  auto response = Call("POST", "/v1/explain",
                       "{\"row\": " + RowLiteral() +
                           ", \"model\": \"prefit\"}");
  ASSERT_EQ(response.status, 200) << response.body;
  // Served from the preloaded surrogate: no pipeline fit ran.
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 0u);
}

// ---------------------------------------------------------------------
// Surrogate backend selection through /v1/explain (DESIGN.md §3.19).
// ---------------------------------------------------------------------

TEST_F(HandlersTest, ExplainDefaultBackendIsSplineGam) {
  auto response =
      Call("POST", "/v1/explain", "{\"row\": " + RowLiteral() + "}");
  ASSERT_EQ(response.status, 200) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("backend"), nullptr);
  EXPECT_EQ(parsed->Find("backend")->str, "spline_gam");
}

TEST_F(HandlersTest, ExplainBackendOverrideSelectsFanova) {
  auto response = Call(
      "POST", "/v1/explain",
      "{\"row\": " + RowLiteral() +
          ", \"config\": {\"surrogate_backend\": \"boosted_fanova\"}}");
  ASSERT_EQ(response.status, 200) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("backend")->str, "boosted_fanova");
  EXPECT_GT(parsed->Find("terms")->array.size(), 0u);
}

TEST_F(HandlersTest, ExplainUnknownBackendIs400) {
  auto response = Call(
      "POST", "/v1/explain",
      "{\"row\": " + RowLiteral() +
          ", \"config\": {\"surrogate_backend\": \"rule_list\"}}");
  EXPECT_EQ(response.status, 400) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  const Json* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  // The message names the offender and lists the registered backends.
  EXPECT_NE(error->str.find("rule_list"), std::string::npos);
  EXPECT_NE(error->str.find("spline_gam"), std::string::npos);
  EXPECT_NE(error->str.find("boosted_fanova"), std::string::npos);
  // A rejected override never reaches the cache or triggers a fit.
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 0u);
}

TEST_F(HandlersTest, ExplainBackendsCacheIndependently) {
  const std::string row = RowLiteral();
  const std::string fanova_body =
      "{\"row\": " + row +
      ", \"config\": {\"surrogate_backend\": \"boosted_fanova\"}}";
  // Two backends on the same forest: two distinct cache keys, one fit
  // each, and repeat queries hit their own entry.
  ASSERT_EQ(Call("POST", "/v1/explain", "{\"row\": " + row + "}").status,
            200);
  ASSERT_EQ(Call("POST", "/v1/explain", fanova_body).status, 200);
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 2u);
  EXPECT_EQ(cache_.size(), 2u);

  ASSERT_EQ(Call("POST", "/v1/explain", "{\"row\": " + row + "}").status,
            200);
  ASSERT_EQ(Call("POST", "/v1/explain", fanova_body).status, 200);
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 2u)
      << "repeat queries must not refit either backend";
}

TEST_F(HandlersTest, ExplainBackendSurvivesModelHotSwap) {
  const std::string fanova_body =
      "{\"row\": " + RowLiteral() +
      ", \"config\": {\"surrogate_backend\": \"boosted_fanova\"}}";
  ASSERT_EQ(Call("POST", "/v1/explain", fanova_body).status, 200);

  // Swap the model under the same name: the forest hash changes, so the
  // override must fit fresh instead of serving the stale surrogate.
  ASSERT_TRUE(registry_.AddModel("census", TrainSmallForest(222)).ok());
  num_features_ = registry_.Get("census")->forest.num_features();
  auto response = Call("POST", "/v1/explain", fanova_body);
  ASSERT_EQ(response.status, 200) << response.body;
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("backend")->str, "boosted_fanova");
  EXPECT_EQ(parsed->Find("hash")->str,
            HashToHex(registry_.Get("census")->hash));
  EXPECT_EQ(obs::metrics::GetCounter("serve.gef_fits").Value(), 2u);
}

// ---------------------------------------------------------------------
// Concurrency stress: registry hot-swap + cache + batcher under TSan
// (satellite (c): run with GEF_SANITIZE=thread in the CI matrix).
// ---------------------------------------------------------------------

TEST(ServeConcurrencyTest, RegistryCacheBatcherStress) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.AddModel("hot", TrainSmallForest(1)).ok());
  Forest replacement_a = TrainSmallForest(2);
  Forest replacement_b = TrainSmallForest(3);
  SurrogateCache cache(2);
  RequestBatcher::Options options;
  options.max_batch = 8;
  RequestBatcher batcher(options);
  GefConfig config = TinyGefConfig();

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};

  // Swapper: replaces "hot" in a tight loop (copying a trained forest
  // each round) — readers must never observe a torn model.
  std::thread swapper([&] {
    int round = 0;
    while (!stop.load()) {
      Forest copy = (round++ % 2 == 0) ? replacement_a : replacement_b;
      if (!registry.AddModel("hot", std::move(copy)).ok()) {
        errors.fetch_add(1);
      }
    }
  });

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(500 + static_cast<uint64_t>(t));
      for (int i = 0; i < 60; ++i) {
        auto model = registry.Get("hot");
        if (model == nullptr) {
          errors.fetch_add(1);
          continue;
        }
        std::vector<double> row(model->forest.num_features());
        for (auto& v : row) v = rng.Uniform() * 5.0;
        auto result = batcher.Predict(model, row);
        if (result.prediction != model->forest.Predict(row)) {
          errors.fetch_add(1);
        }
        // Cheap synthetic fits keyed by the live model hash exercise
        // single-flight + LRU under contention.
        auto surrogate = cache.GetOrFit(model->hash, config, [] {
          return std::make_unique<GefExplanation>();
        });
        if (surrogate == nullptr) errors.fetch_add(1);
        if (i % 16 == 0) (void)registry.List();
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  swapper.join();
  EXPECT_EQ(errors.load(), 0);
}

// ---------------------------------------------------------------------
// serve/reactor — the epoll serving core (PR 9), exercised over real
// loopback sockets: keep-alive, pipelining order, idle-timeout
// exactness, 429 load shedding, shutdown drain and multi-shard stress.
// ---------------------------------------------------------------------

using serve::BoundedRequestQueue;
using serve::Completion;
using serve::CompletionQueue;
using serve::HttpServer;
using serve::ParsedRequest;

TEST(BoundedRequestQueueTest, CapacityShedAndDrainSemantics) {
  BoundedRequestQueue queue(2);
  ParsedRequest item;
  EXPECT_TRUE(queue.TryPush(item));
  EXPECT_TRUE(queue.TryPush(item));
  EXPECT_FALSE(queue.TryPush(item)) << "full queue must shed";

  std::vector<ParsedRequest> out;
  EXPECT_TRUE(queue.PopAll(&out));
  EXPECT_EQ(out.size(), 2u) << "PopAll hands over every pending item";

  EXPECT_TRUE(queue.TryPush(item));
  queue.Stop();
  EXPECT_FALSE(queue.TryPush(item)) << "stopped queue admits nothing";
  EXPECT_TRUE(queue.PopAll(&out))
      << "items admitted before Stop() still drain";
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(queue.PopAll(&out)) << "stopped AND empty ends workers";
  EXPECT_EQ(queue.DepthHighWater(), 2u);
}

TEST(BoundedRequestQueueTest, PopAllBlocksUntilPushThenStopReleases) {
  BoundedRequestQueue queue(4);
  std::vector<ParsedRequest> got;
  std::thread consumer([&] {
    std::vector<ParsedRequest> out;
    while (queue.PopAll(&out)) {
      for (auto& item : out) got.push_back(std::move(item));
    }
  });
  ParsedRequest item;
  item.seq = 7;
  ASSERT_TRUE(queue.TryPush(std::move(item)));
  queue.Stop();
  consumer.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seq, 7u);
}

TEST(CompletionQueueTest, PostSignalsOnlyOnEmptyToNonEmpty) {
  CompletionQueue queue;
  Completion completion;
  EXPECT_TRUE(queue.Post(completion))
      << "empty->non-empty must request an eventfd kick";
  EXPECT_FALSE(queue.Post(completion))
      << "further posts piggyback on the pending kick";
  std::vector<Completion> out;
  queue.DrainInto(&out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(queue.Post(completion)) << "drained queue kicks again";
}

/// Minimal blocking HTTP/1.1 client for driving the reactor over a real
/// socket: raw byte sends (for pipelined bursts) and full-response
/// reads with a receive timeout, so a server bug fails an assertion
/// instead of hanging the suite.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(int port, int recv_timeout_ms = 10000) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) == 0;
  }

  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads exactly one response (keep-alive aware via Content-Length).
  bool ReadResponse(int* status, std::string* headers,
                    std::string* body) {
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) ==
           std::string::npos) {
      if (!Fill()) return false;
    }
    *headers = buffer_.substr(0, header_end);
    *status = std::atoi(headers->c_str() + 9);  // "HTTP/1.1 NNN"
    const size_t cl = headers->find("Content-Length:");
    if (cl == std::string::npos) return false;
    const size_t length =
        static_cast<size_t>(std::atol(headers->c_str() + cl + 15));
    const size_t total = header_end + 4 + length;
    while (buffer_.size() < total) {
      if (!Fill()) return false;
    }
    *body = buffer_.substr(header_end + 4, length);
    buffer_.erase(0, total);
    return true;
  }

  /// recv()s until EOF; true when the server closed the connection
  /// within the receive timeout (leftover bytes are discarded).
  bool WaitForClose() {
    char tmp[1024];
    for (;;) {
      const ssize_t n = recv(fd_, tmp, sizeof(tmp), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  bool Fill() {
    char tmp[4096];
    const ssize_t n = recv(fd_, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buffer_.append(tmp, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

std::string HttpRequestText(const std::string& method,
                            const std::string& target,
                            const std::string& body) {
  std::string out = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

/// One /metrics round trip on `client` (keep-alive); the value of the
/// named counter/gauge, or -1.0 when absent.
double ScrapeMetric(TestClient* client, const std::string& name) {
  if (!client->SendRaw(HttpRequestText("GET", "/metrics", ""))) {
    return -1.0;
  }
  int status = 0;
  std::string headers, body;
  if (!client->ReadResponse(&status, &headers, &body) || status != 200) {
    return -1.0;
  }
  const std::string needle = name + " ";
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    if (body.compare(pos, needle.size(), needle) == 0) {
      return std::strtod(body.c_str() + pos + needle.size(), nullptr);
    }
    pos = eol + 1;
  }
  return -1.0;
}

/// Polls /metrics until `name` reaches `at_least` — the deterministic
/// way to wait for "the worker has entered the handler" (counters
/// increment at handler entry) without sleeping for a guessed duration.
::testing::AssertionResult WaitForMetric(TestClient* client,
                                         const std::string& name,
                                         double at_least,
                                         int timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  double last = -1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    last = ScrapeMetric(client, name);
    if (last >= at_least) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return ::testing::AssertionFailure()
         << name << " never reached " << at_least << " (last " << last
         << ")";
}

class ReactorServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::metrics::ResetAllForTest();
    InstallShutdownHandler();
    EnableDrainMode();
    internal::ResetShutdownStateForTest();
    ASSERT_TRUE(registry_.AddModel("census", TrainSmallForest()).ok());
    num_features_ = registry_.Get("census")->forest.num_features();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_.reset();
    }
    if (batcher_ != nullptr) batcher_->Stop();
    // HttpServer::Stop() raises the process-wide shutdown flag; clear
    // it so the next test's server starts serving instead of draining.
    internal::ResetShutdownStateForTest();
  }

  void StartServer(HttpServer::Options options,
                   RequestBatcher::Options batch_options = {},
                   GefConfig config = TinyGefConfig()) {
    batcher_ = std::make_unique<RequestBatcher>(batch_options);
    context_.registry = &registry_;
    context_.cache = &cache_;
    context_.batcher = batcher_.get();
    context_.default_config = config;
    server_ = std::make_unique<HttpServer>(context_, std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  std::vector<double> Row(double fill) const {
    return std::vector<double>(num_features_, fill);
  }

  /// A config whose surrogate fit takes long enough to hold a worker
  /// busy while the test probes the server's behaviour around it.
  GefConfig SlowConfig() const {
    GefConfig config = TinyGefConfig();
    config.num_univariate = 3;
    config.num_samples = 60000;
    config.k = 32;
    config.spline_basis = 12;
    return config;
  }

  ModelRegistry registry_;
  SurrogateCache cache_{4};
  std::unique_ptr<RequestBatcher> batcher_;
  ServeContext context_;
  std::unique_ptr<HttpServer> server_;
  size_t num_features_ = 0;
};

TEST_F(ReactorServeTest, ServesKeepAliveRequestsOverRealSocket) {
  HttpServer::Options options;
  options.num_shards = 1;
  StartServer(options);

  TestClient client;
  ASSERT_TRUE(client.Connect(server_->bound_port()));
  int status = 0;
  std::string headers, body;
  ASSERT_TRUE(client.SendRaw(HttpRequestText("GET", "/healthz", "")));
  ASSERT_TRUE(client.ReadResponse(&status, &headers, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("ok"), std::string::npos);

  // Same connection (keep-alive) serves a predict whose prediction is
  // bit-identical to the in-process forest.
  const std::vector<double> row = Row(0.5);
  ASSERT_TRUE(client.SendRaw(HttpRequestText(
      "POST", "/v1/predict",
      "{\"row\":" + serve::JsonNumberArray(row) + "}")));
  ASSERT_TRUE(client.ReadResponse(&status, &headers, &body));
  ASSERT_EQ(status, 200) << body;
  const std::string expected =
      "\"prediction\":" +
      serve::JsonNumberText(registry_.Get("census")->forest.Predict(row)) +
      "}";
  EXPECT_NE(body.find(expected), std::string::npos) << body;
}

TEST_F(ReactorServeTest, PipelinedResponsesReturnInRequestOrder) {
  HttpServer::Options options;
  options.num_shards = 1;
  // Two workers make out-of-order completion possible; the connection
  // must still release responses in request order.
  options.workers_per_shard = 2;
  StartServer(options);

  constexpr int kBurst = 6;
  Rng rng(42);
  std::string burst;
  std::vector<std::string> expected;
  for (int i = 0; i < kBurst; ++i) {
    std::vector<double> row(num_features_);
    for (auto& v : row) v = rng.Uniform() * 5.0;
    const std::string body =
        "{\"row\":" + serve::JsonNumberArray(row) + "}";
    burst += HttpRequestText("POST", "/v1/predict", body);
    // The reactor must transport the handler's output byte-for-byte.
    HttpRequest direct;
    direct.method = "POST";
    direct.target = "/v1/predict";
    direct.version = "HTTP/1.1";
    direct.body = body;
    expected.push_back(HandleRequest(context_, direct).body);
  }

  TestClient client;
  ASSERT_TRUE(client.Connect(server_->bound_port()));
  ASSERT_TRUE(client.SendRaw(burst));
  for (int i = 0; i < kBurst; ++i) {
    int status = 0;
    std::string headers, body;
    ASSERT_TRUE(client.ReadResponse(&status, &headers, &body))
        << "response " << i;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, expected[i])
        << "response " << i << " reordered or altered";
  }
}

// With the micro-batcher disabled, canonical predicts stage on the
// shard and score in one PredictRawRows sweep per dispatch round. The
// burst path must produce the exact bytes the generic handler would:
// same scanner, same model resolution, same sigmoid, same formatting.
TEST_F(ReactorServeTest, BurstBatchedPredictsMatchDirectHandlerByteForByte) {
  HttpServer::Options options;
  options.num_shards = 1;
  options.workers_per_shard = 1;
  RequestBatcher::Options batching;
  batching.enabled = false;  // predicts take the inline burst path
  StartServer(options, batching);

  constexpr int kBurst = 24;
  Rng rng(7);
  std::string burst;
  std::vector<std::string> expected;
  for (int i = 0; i < kBurst; ++i) {
    std::vector<double> row(num_features_);
    for (auto& v : row) v = rng.Uniform() * 5.0;
    // Alternate the two canonical shapes so named and implied model
    // lookups land in the same staged sweep.
    const std::string row_json = serve::JsonNumberArray(row);
    const std::string body =
        i % 2 == 0 ? "{\"row\":" + row_json + "}"
                   : "{\"model\":\"census\",\"row\":" + row_json + "}";
    burst += HttpRequestText("POST", "/v1/predict", body);
    HttpRequest direct;
    direct.method = "POST";
    direct.target = "/v1/predict";
    direct.version = "HTTP/1.1";
    direct.body = body;
    expected.push_back(HandleRequest(context_, direct).body);
  }

  TestClient client;
  ASSERT_TRUE(client.Connect(server_->bound_port()));
  ASSERT_TRUE(client.SendRaw(burst));
  for (int i = 0; i < kBurst; ++i) {
    int status = 0;
    std::string headers, body;
    ASSERT_TRUE(client.ReadResponse(&status, &headers, &body))
        << "response " << i;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, expected[i]) << "response " << i << " diverged";
  }
  // Every predict was answered and at least one sweep actually
  // coalesced rows (the whole burst arrives in one or two dispatch
  // rounds, far above the 2-row bar).
  EXPECT_GE(ScrapeMetric(&client, "serve.requests.predict"), kBurst);
  EXPECT_GE(ScrapeMetric(&client, "serve.predict.burst_rows.max"), 2.0);
}

TEST_F(ReactorServeTest, IdleKeepAliveClosesWithinReadTimeoutPlusTick) {
  HttpServer::Options options;
  options.num_shards = 1;
  options.read_timeout_ms = 300;
  options.tick_ms = 100;
  StartServer(options);

  TestClient client;
  ASSERT_TRUE(client.Connect(server_->bound_port()));
  int status = 0;
  std::string headers, body;
  ASSERT_TRUE(client.SendRaw(HttpRequestText("GET", "/healthz", "")));
  ASSERT_TRUE(client.ReadResponse(&status, &headers, &body));
  ASSERT_EQ(status, 200);

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.WaitForClose())
      << "idle keep-alive connection was never closed";
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Deadline is read_timeout_ms, enforced to tick granularity: the
  // close must land after the timeout but within timeout + one tick
  // (plus generous scheduling slack for sanitizer CI).
  EXPECT_GE(elapsed_ms, 250.0) << "closed before the idle deadline";
  EXPECT_LE(elapsed_ms, 1500.0) << "timer wheel fired far too late";

  TestClient prober;
  ASSERT_TRUE(prober.Connect(server_->bound_port()));
  EXPECT_GE(ScrapeMetric(&prober, "serve.timeouts"), 1.0);
}

TEST_F(ReactorServeTest, OverloadShedsWith429AndRetryAfter) {
  HttpServer::Options options;
  options.num_shards = 1;
  options.workers_per_shard = 1;
  options.queue_capacity = 1;
  StartServer(options, RequestBatcher::Options{}, SlowConfig());
  const int port = server_->bound_port();

  // Occupy the only worker with a surrogate fit.
  const std::string explain_body =
      "{\"row\":" + serve::JsonNumberArray(Row(0.5)) + "}";
  TestClient explainer;
  ASSERT_TRUE(explainer.Connect(port, 120000));
  ASSERT_TRUE(explainer.SendRaw(
      HttpRequestText("POST", "/v1/explain", explain_body)));

  // GETs run inline on the shard thread, so /metrics stays reachable
  // while the worker is busy; wait until the fit is actually running.
  TestClient prober;
  ASSERT_TRUE(prober.Connect(port));
  ASSERT_TRUE(WaitForMetric(&prober, "serve.requests.explain", 1.0));

  // Burst 4 predicts on separate connections: batching is on, so each
  // must queue — capacity 1 admits exactly one, the rest shed with an
  // immediate 429 + Retry-After while the admitted one waits its turn.
  constexpr int kBurstConns = 4;
  std::vector<std::unique_ptr<TestClient>> burst;
  for (int i = 0; i < kBurstConns; ++i) {
    auto client = std::make_unique<TestClient>();
    ASSERT_TRUE(client->Connect(port, 120000));
    ASSERT_TRUE(client->SendRaw(HttpRequestText(
        "POST", "/v1/predict",
        "{\"row\":" + serve::JsonNumberArray(Row(0.25)) + "}")));
    burst.push_back(std::move(client));
  }

  // The server stays responsive under overload: health checks answer
  // inline while every worker slot and queue slot is taken.
  int status = 0;
  std::string headers, body;
  ASSERT_TRUE(prober.SendRaw(HttpRequestText("GET", "/healthz", "")));
  ASSERT_TRUE(prober.ReadResponse(&status, &headers, &body));
  EXPECT_EQ(status, 200);

  int served = 0;
  int shed = 0;
  for (int i = 0; i < kBurstConns; ++i) {
    ASSERT_TRUE(burst[i]->ReadResponse(&status, &headers, &body))
        << "burst connection " << i;
    if (status == 200) {
      ++served;
    } else {
      ASSERT_EQ(status, 429) << body;
      EXPECT_NE(headers.find("Retry-After:"), std::string::npos)
          << headers;
      ++shed;
    }
  }
  EXPECT_EQ(served, 1) << "queue capacity 1 admits exactly one request";
  EXPECT_EQ(shed, kBurstConns - 1);

  // The explain itself completes once the fit finishes.
  ASSERT_TRUE(explainer.ReadResponse(&status, &headers, &body));
  EXPECT_EQ(status, 200) << body;

  EXPECT_GE(ScrapeMetric(&prober, "serve.shed"),
            static_cast<double>(kBurstConns - 1));
}

TEST_F(ReactorServeTest, DrainDeliversInFlightResponseThenCloses) {
  HttpServer::Options options;
  options.num_shards = 1;
  StartServer(options, RequestBatcher::Options{}, SlowConfig());
  const int port = server_->bound_port();

  // An idle keep-alive connection, to watch it die on drain.
  TestClient idle;
  ASSERT_TRUE(idle.Connect(port));
  int status = 0;
  std::string headers, body;
  ASSERT_TRUE(idle.SendRaw(HttpRequestText("GET", "/healthz", "")));
  ASSERT_TRUE(idle.ReadResponse(&status, &headers, &body));
  ASSERT_EQ(status, 200);

  TestClient explainer;
  ASSERT_TRUE(explainer.Connect(port, 120000));
  ASSERT_TRUE(explainer.SendRaw(HttpRequestText(
      "POST", "/v1/explain",
      "{\"row\":" + serve::JsonNumberArray(Row(0.5)) + "}")));
  TestClient prober;
  ASSERT_TRUE(prober.Connect(port));
  ASSERT_TRUE(WaitForMetric(&prober, "serve.requests.explain", 1.0));

  // SIGTERM-equivalent while the fit is in flight.
  RequestShutdown();

  EXPECT_TRUE(idle.WaitForClose())
      << "idle connections must close immediately on drain";
  ASSERT_TRUE(explainer.ReadResponse(&status, &headers, &body));
  EXPECT_EQ(status, 200) << body;
  EXPECT_NE(headers.find("Connection: close"), std::string::npos)
      << "drain responses must announce the close:\n"
      << headers;
  EXPECT_TRUE(explainer.WaitForClose());
  server_->Wait();  // returns once every shard's connection table empties
}

TEST_F(ReactorServeTest, MultiShardStressWithHotSwapThenDrain) {
  HttpServer::Options options;
  options.num_shards = 2;
  options.workers_per_shard = 2;
  StartServer(options);
  const int port = server_->bound_port();

  std::atomic<int> errors{0};
  constexpr int kClients = 4;
  constexpr int kIters = 25;
  constexpr int kBurst = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client;
      if (!client.Connect(port, 60000)) {
        errors.fetch_add(1);
        return;
      }
      Rng rng(900 + static_cast<uint64_t>(c));
      for (int i = 0; i < kIters; ++i) {
        std::string burst;
        for (int b = 0; b < kBurst; ++b) {
          std::vector<double> row(num_features_);
          for (auto& v : row) v = rng.Uniform() * 5.0;
          burst += HttpRequestText(
              "POST", "/v1/predict",
              "{\"row\":" + serve::JsonNumberArray(row) + "}");
        }
        if (!client.SendRaw(burst)) {
          errors.fetch_add(1);
          return;
        }
        for (int b = 0; b < kBurst; ++b) {
          int status = 0;
          std::string headers, body;
          if (!client.ReadResponse(&status, &headers, &body) ||
              status != 200 ||
              body.find("\"prediction\":") == std::string::npos) {
            errors.fetch_add(1);
            return;
          }
        }
      }
    });
  }

  // Hot-swap the served model while the pipelined traffic flows.
  Forest swap_a = TrainSmallForest(7);
  Forest swap_b = TrainSmallForest(8);
  for (int round = 0; round < 10; ++round) {
    Forest copy = (round % 2 == 0) ? swap_a : swap_b;
    if (!registry_.AddModel("census", std::move(copy)).ok()) {
      errors.fetch_add(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(errors.load(), 0);

  // Drain with a live keep-alive connection still open.
  TestClient lingering;
  ASSERT_TRUE(lingering.Connect(port));
  int status = 0;
  std::string headers, body;
  ASSERT_TRUE(lingering.SendRaw(HttpRequestText("GET", "/healthz", "")));
  ASSERT_TRUE(lingering.ReadResponse(&status, &headers, &body));
  ASSERT_EQ(status, 200);
  server_->Stop();
  EXPECT_TRUE(lingering.WaitForClose());
}

// ---------------------------------------------------------------------
// Handler fast path (PR 9): the zero-allocation predict-body scanner
// must be byte-identical to the generic JSON-tree path and must hand
// anything unusual back to it.
// ---------------------------------------------------------------------

TEST_F(HandlersTest, PredictFastScanMatchesGenericParserByteForByte) {
  const std::string canonical = "{\"row\":" + RowLiteral() + "}";
  // An unknown member forces the generic JSON-tree path (the scanner
  // only accepts the exact canonical shape, which the generic parser
  // tolerates plus extras); both must serialize identical responses.
  const std::string generic =
      "{\"row\":" + RowLiteral() + ",\"unknown\":1}";
  auto fast = Call("POST", "/v1/predict", canonical);
  auto slow = Call("POST", "/v1/predict", generic);
  ASSERT_EQ(fast.status, 200) << fast.body;
  ASSERT_EQ(slow.status, 200) << slow.body;
  EXPECT_EQ(fast.body, slow.body);

  const std::string with_model =
      "{\"model\":\"census\",\"row\":" + RowLiteral() + "}";
  auto named = Call("POST", "/v1/predict", with_model);
  ASSERT_EQ(named.status, 200) << named.body;
  EXPECT_EQ(named.body, fast.body);
}

TEST_F(HandlersTest, PredictFastScanRejectsOddBodiesViaGenericPath) {
  // Shapes the scanner must refuse and hand to the strict parser — the
  // status comes from the generic path's existing error handling, so a
  // scanner that wrongly accepted any of these would change the code.
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\":[1,2,]}").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\":[0x1p3]}").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\":[nan]}").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\":[inf,-inf]}").status,
            400);
  EXPECT_EQ(Call("POST", "/v1/predict", "{\"row\":[\"a\"],}").status,
            400);
}

}  // namespace
}  // namespace gef
