// Tests for the synthetic generators: the paper's g', h, g''_Π functions
// and the simulated Superconductivity / Census substitutes.

#include <cmath>
#include <numbers>
#include <set>

#include <gtest/gtest.h>

#include "data/census.h"
#include "data/superconductivity.h"
#include "data/synthetic.h"
#include "stats/descriptive.h"

namespace gef {
namespace {

TEST(SyntheticTest, ComponentFormulasMatchPaper) {
  // Component 0: identity.
  EXPECT_DOUBLE_EQ(SyntheticComponent(0, 0.3), 0.3);
  // Component 1: sin(20x).
  EXPECT_NEAR(SyntheticComponent(1, 0.1), std::sin(2.0), 1e-12);
  // Component 2: sigmoid jump at 0.5.
  EXPECT_NEAR(SyntheticComponent(2, 0.5), 0.5, 1e-12);
  EXPECT_GT(SyntheticComponent(2, 0.9), 0.999);
  EXPECT_LT(SyntheticComponent(2, 0.1), 0.001);
  // Component 3: (atan(10x) - sin(10x)) / 2.
  EXPECT_NEAR(SyntheticComponent(3, 0.2),
              (std::atan(2.0) - std::sin(2.0)) / 2.0, 1e-12);
  // Component 4: 2 / (x + 1).
  EXPECT_DOUBLE_EQ(SyntheticComponent(4, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(SyntheticComponent(4, 0.0), 2.0);
}

TEST(SyntheticTest, GPrimeSumsComponents) {
  std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5};
  double expected = 0.0;
  for (int j = 0; j < 5; ++j) expected += SyntheticComponent(j, x[j]);
  EXPECT_NEAR(GPrime(x), expected, 1e-12);
}

TEST(SyntheticTest, InteractionBumpPeaksAtCenter) {
  double center = InteractionBump(0.5, 0.5);
  EXPECT_NEAR(center, 2.0, 1e-12);
  EXPECT_LT(InteractionBump(0.0, 0.0), center);
  EXPECT_LT(InteractionBump(1.0, 0.3), center);
  // Symmetry.
  EXPECT_DOUBLE_EQ(InteractionBump(0.2, 0.8), InteractionBump(0.8, 0.2));
}

TEST(SyntheticTest, GDoublePrimeAddsBumps) {
  std::vector<double> x = {0.5, 0.5, 0.5, 0.5, 0.5};
  std::vector<std::pair<int, int>> pairs = {{0, 1}, {2, 3}};
  EXPECT_NEAR(GDoublePrime(x, pairs), GPrime(x) + 2.0 * 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(GDoublePrime(x, {}), GPrime(x));
}

TEST(SyntheticTest, DatasetShapeAndDomain) {
  Rng rng(41);
  Dataset d = MakeGPrimeDataset(500, &rng);
  EXPECT_EQ(d.num_rows(), 500u);
  EXPECT_EQ(d.num_features(), 5u);
  EXPECT_EQ(d.feature_name(0), "x1");
  EXPECT_EQ(d.feature_name(4), "x5");
  for (size_t f = 0; f < 5; ++f) {
    for (double v : d.Column(f)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(SyntheticTest, NoiselessLabelsMatchGPrime) {
  Rng rng(42);
  Dataset d = MakeGPrimeDataset(100, &rng, /*noise_sigma=*/0.0);
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_NEAR(d.target(i), GPrime(d.GetRow(i)), 1e-12);
  }
}

TEST(SyntheticTest, NoiseHasExpectedMagnitude) {
  Rng rng(43);
  Dataset noisy = MakeGPrimeDataset(5000, &rng, 0.1);
  std::vector<double> residuals;
  for (size_t i = 0; i < noisy.num_rows(); ++i) {
    residuals.push_back(noisy.target(i) - GPrime(noisy.GetRow(i)));
  }
  EXPECT_NEAR(Mean(residuals), 0.0, 0.02);
  // 5 independent noise draws of sigma 0.1 => total sd ~ sqrt(5)*0.1.
  EXPECT_NEAR(StdDev(residuals), std::sqrt(5.0) * 0.1, 0.02);
}

TEST(SyntheticTest, AllFeaturePairsCount) {
  auto pairs = AllFeaturePairs5();
  EXPECT_EQ(pairs.size(), 10u);
  std::set<std::pair<int, int>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto& [a, b] : pairs) EXPECT_LT(a, b);
}

TEST(SyntheticTest, AllInteractionTriplesCount) {
  auto triples = AllInteractionTriples();
  EXPECT_EQ(triples.size(), 120u);  // C(10, 3)
  for (const auto& triple : triples) EXPECT_EQ(triple.size(), 3u);
}

TEST(SyntheticTest, SigmoidTargetShape) {
  EXPECT_NEAR(SigmoidTarget(0.5), 0.5, 1e-12);
  EXPECT_GT(SigmoidTarget(0.7), 0.99);
  EXPECT_LT(SigmoidTarget(0.3), 0.01);
}

TEST(SyntheticTest, SigmoidDatasetSingleFeature) {
  Rng rng(44);
  Dataset d = MakeSigmoidDataset(200, &rng);
  EXPECT_EQ(d.num_features(), 1u);
  EXPECT_EQ(d.num_rows(), 200u);
}

TEST(SuperconductivityTest, SchemaMatchesRealDataset) {
  Rng rng(45);
  Dataset d = MakeSuperconductivityDataset(100, &rng);
  EXPECT_EQ(d.num_features(),
            static_cast<size_t>(kSuperconductivityFeatures));
  EXPECT_EQ(d.feature_name(0), "number_of_elements");
  EXPECT_EQ(d.feature_name(kWeamFeatureIndex),
            "wtd_entropy_atomic_mass");
  EXPECT_EQ(d.feature_name(kRarFeatureIndex), "range_atomic_radius");
}

TEST(SuperconductivityTest, TargetNonNegativeKelvinScale) {
  Rng rng(46);
  Dataset d = MakeSuperconductivityDataset(2000, &rng);
  for (double t : d.targets()) EXPECT_GE(t, 0.0);
  double mean = Mean(d.targets());
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 120.0);
}

TEST(SuperconductivityTest, WeamJumpIsPresent) {
  // The noise-free target jumps up as WEAM crosses 1.1 (Fig 9 structure).
  Rng rng(47);
  Dataset d = MakeSuperconductivityDataset(1, &rng);
  std::vector<double> row = d.GetRow(0);
  row[kWeamFeatureIndex] = 0.9;
  double below = SuperconductivityTarget(row);
  row[kWeamFeatureIndex] = 1.3;
  double above = SuperconductivityTarget(row);
  EXPECT_GT(above - below, 20.0);
}

TEST(SuperconductivityTest, SiblingStatisticsAreCorrelated) {
  Rng rng(48);
  Dataset d = MakeSuperconductivityDataset(3000, &rng);
  // mean_atomic_mass (index 1) vs wtd_mean_atomic_mass (index 2) share a
  // latent property factor.
  double corr = PearsonCorrelation(d.Column(1), d.Column(2));
  EXPECT_GT(corr, 0.5);
  // Features of unrelated properties are weakly correlated.
  double cross = PearsonCorrelation(d.Column(1), d.Column(75));
  EXPECT_LT(std::fabs(cross), 0.4);
}

TEST(CensusTest, RawSchemaAndLevels) {
  Rng rng(49);
  Dataset raw = MakeCensusDatasetRaw(1000, &rng);
  EXPECT_EQ(raw.num_features(), 12u);
  EXPECT_GE(raw.FeatureIndex("education_num"), 0);
  EXPECT_GE(raw.FeatureIndex("sex"), 0);
  for (size_t col : CensusCategoricalColumns()) {
    for (double v : raw.Column(col)) {
      EXPECT_EQ(v, std::floor(v));
      EXPECT_GE(v, 0.0);
    }
  }
  for (double t : raw.targets()) {
    EXPECT_TRUE(t == 0.0 || t == 1.0);
  }
}

TEST(CensusTest, TargetProbabilityIncreasesWithEducation) {
  Rng rng(50);
  Dataset raw = MakeCensusDatasetRaw(1, &rng);
  std::vector<double> row = raw.GetRow(0);
  int edu = raw.FeatureIndex("education_num");
  row[edu] = 4.0;
  double low = CensusTargetProbability(row);
  row[edu] = 15.0;
  double high = CensusTargetProbability(row);
  EXPECT_GT(high, low);
}

TEST(CensusTest, EncodedDatasetIsBinaryForCategoricals) {
  Rng rng(51);
  Dataset encoded = MakeCensusDatasetEncoded(500, &rng);
  EXPECT_GT(encoded.num_features(), 12u);
  int sex_male = encoded.FeatureIndex("sex=1");
  ASSERT_GE(sex_male, 0);
  for (double v : encoded.Column(sex_male)) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(CensusTest, PositiveRateIsRealistic) {
  Rng rng(52);
  Dataset raw = MakeCensusDatasetRaw(5000, &rng);
  double rate = Mean(raw.targets());
  // The real Adult dataset has ~24% positives; the simulation should be
  // in a plausible band, not degenerate.
  EXPECT_GT(rate, 0.08);
  EXPECT_LT(rate, 0.5);
}

}  // namespace
}  // namespace gef
