// Tests for the B-spline basis: partition of unity (property-swept over
// random ranges and basis sizes), locality, clamping, and the difference
// penalty.

#include <cmath>

#include <gtest/gtest.h>

#include "gam/bspline.h"
#include "stats/rng.h"

namespace gef {
namespace {

TEST(BSplineTest, PartitionOfUnityOnUnitInterval) {
  BSplineBasis basis(0.0, 1.0, 10);
  for (double x = 0.0; x <= 1.0; x += 0.01) {
    auto values = basis.Evaluate(x);
    double sum = 0.0;
    for (double v : values) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-10) << "at x = " << x;
  }
}

TEST(BSplineTest, ClampingGivesConstantExtrapolation) {
  BSplineBasis basis(0.0, 1.0, 8);
  auto at_hi = basis.Evaluate(1.0);
  auto beyond = basis.Evaluate(5.0);
  for (int j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(at_hi[j], beyond[j]);
  auto at_lo = basis.Evaluate(0.0);
  auto below = basis.Evaluate(-3.0);
  for (int j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(at_lo[j], below[j]);
}

TEST(BSplineTest, CubicBasisHasAtMostFourActiveFunctions) {
  BSplineBasis basis(0.0, 1.0, 12, 3);
  for (double x : {0.05, 0.33, 0.61, 0.99}) {
    auto values = basis.Evaluate(x);
    int active = 0;
    for (double v : values) active += v > 1e-12 ? 1 : 0;
    EXPECT_LE(active, 4);
    EXPECT_GE(active, 1);
  }
}

TEST(BSplineTest, ReproducesLinearFunctions) {
  // B-splines of degree >= 1 reproduce linears: with coefficients equal
  // to the Greville abscissae, the spline equals x.
  const int n = 9;
  const int degree = 3;
  BSplineBasis basis(0.0, 1.0, n, degree);
  // Greville abscissae for uniform knots t_i = (i - degree) * h:
  // xi_j = (t_{j+1} + ... + t_{j+degree}) / degree.
  double h = 1.0 / (n - degree);
  std::vector<double> greville(n);
  for (int j = 0; j < n; ++j) {
    double sum = 0.0;
    for (int k = 1; k <= degree; ++k) sum += (j + k - degree) * h;
    greville[j] = sum / degree;
  }
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    auto values = basis.Evaluate(x);
    double spline = 0.0;
    for (int j = 0; j < n; ++j) spline += values[j] * greville[j];
    EXPECT_NEAR(spline, x, 1e-10);
  }
}

TEST(BSplineTest, DifferencePenaltyAnnihilatesLinearCoefficients) {
  BSplineBasis basis(0.0, 1.0, 10);
  Matrix penalty = basis.DifferencePenalty(2);
  // Second differences of an affine coefficient sequence vanish, so
  // cᵀ S c = 0 for c_j = a + b j.
  Vector c(10);
  for (int j = 0; j < 10; ++j) c[j] = 2.0 + 0.7 * j;
  Vector sc = MatVec(penalty, c);
  EXPECT_NEAR(Norm(sc), 0.0, 1e-10);
}

TEST(BSplineTest, DifferencePenaltyPositiveForWigglyCoefficients) {
  BSplineBasis basis(0.0, 1.0, 10);
  Matrix penalty = basis.DifferencePenalty(2);
  Vector c(10);
  for (int j = 0; j < 10; ++j) c[j] = (j % 2 == 0) ? 1.0 : -1.0;
  EXPECT_GT(Dot(c, MatVec(penalty, c)), 1.0);
}

TEST(BSplineTest, PenaltyIsSymmetric) {
  BSplineBasis basis(-2.0, 3.0, 12);
  Matrix penalty = basis.DifferencePenalty(2);
  for (size_t i = 0; i < penalty.rows(); ++i) {
    for (size_t j = 0; j < penalty.cols(); ++j) {
      EXPECT_DOUBLE_EQ(penalty(i, j), penalty(j, i));
    }
  }
}

TEST(BSplineDeathTest, TooFewBasisFunctionsAbort) {
  EXPECT_DEATH(BSplineBasis(0.0, 1.0, 3, 3), "");
}

TEST(BSplineDeathTest, InvertedRangeAborts) {
  EXPECT_DEATH(BSplineBasis(1.0, 0.0, 8), "");
}

TEST(BSplineFromSitesTest, KnotsAtSiteQuantiles) {
  // Sites clustered near 0.5 with a sparse tail: interior knots follow
  // the site density, so every knot interval contains sites.
  std::vector<double> sites;
  Rng rng(881);
  for (int i = 0; i < 180; ++i) sites.push_back(rng.Normal(0.5, 0.02));
  for (int i = 0; i < 20; ++i) sites.push_back(rng.Uniform());
  std::sort(sites.begin(), sites.end());
  BSplineBasis basis = BSplineBasis::FromSites(sites, 12);
  EXPECT_LE(basis.num_basis(), 12);
  EXPECT_DOUBLE_EQ(basis.lo(), sites.front());
  EXPECT_DOUBLE_EQ(basis.hi(), sites.back());
  // Every interior knot interval must contain at least one site.
  const auto& knots = basis.knots();
  for (size_t i = basis.degree();
       i + basis.degree() + 1 < knots.size(); ++i) {
    if (knots[i] == knots[i + 1]) continue;
    bool has_site = false;
    for (double s : sites) {
      if (s >= knots[i] && s <= knots[i + 1]) {
        has_site = true;
        break;
      }
    }
    EXPECT_TRUE(has_site) << "empty knot interval [" << knots[i] << ", "
                          << knots[i + 1] << "]";
  }
}

TEST(BSplineFromSitesTest, PartitionOfUnityWithClampedKnots) {
  std::vector<double> sites;
  Rng rng(882);
  for (int i = 0; i < 100; ++i) sites.push_back(rng.Uniform());
  std::sort(sites.begin(), sites.end());
  BSplineBasis basis = BSplineBasis::FromSites(sites, 10);
  for (double x = sites.front(); x <= sites.back(); x += 0.01) {
    auto values = basis.Evaluate(x);
    double sum = 0.0;
    for (double v : values) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "at x = " << x;
  }
  // Boundary points included.
  auto at_hi = basis.Evaluate(sites.back());
  double sum_hi = 0.0;
  for (double v : at_hi) sum_hi += v;
  EXPECT_NEAR(sum_hi, 1.0, 1e-9);
}

TEST(BSplineFromSitesTest, FewDistinctSitesShrinkTheBasis) {
  std::vector<double> sites = {0.0, 0.5, 1.0};
  BSplineBasis basis = BSplineBasis::FromSites(sites, 16);
  // Only 1 usable interior quantile (0.5): basis = degree+1 + 1.
  EXPECT_LE(basis.num_basis(), 6);
  EXPECT_GE(basis.num_basis(), 4);
}

TEST(BSplineFromKnotsTest, RoundTripsKnotVector) {
  std::vector<double> sites;
  for (int i = 0; i <= 50; ++i) sites.push_back(i / 50.0);
  BSplineBasis original = BSplineBasis::FromSites(sites, 9);
  BSplineBasis restored =
      BSplineBasis::FromKnots(original.knots(), original.degree());
  EXPECT_EQ(restored.num_basis(), original.num_basis());
  EXPECT_DOUBLE_EQ(restored.lo(), original.lo());
  EXPECT_DOUBLE_EQ(restored.hi(), original.hi());
  for (double x : {0.0, 0.21, 0.5, 0.77, 1.0}) {
    auto a = original.Evaluate(x);
    auto b = restored.Evaluate(x);
    for (int j = 0; j < original.num_basis(); ++j) {
      EXPECT_DOUBLE_EQ(a[j], b[j]);
    }
  }
}

TEST(BSplineFromKnotsTest, UniformBasisAlsoRoundTrips) {
  BSplineBasis original(0.0, 1.0, 10);
  BSplineBasis restored =
      BSplineBasis::FromKnots(original.knots(), original.degree());
  for (double x : {0.0, 0.33, 0.99}) {
    auto a = original.Evaluate(x);
    auto b = restored.Evaluate(x);
    for (int j = 0; j < 10; ++j) EXPECT_DOUBLE_EQ(a[j], b[j]);
  }
}

// Property sweep: partition of unity must hold for arbitrary ranges,
// basis sizes and degrees.
struct BasisParams {
  double lo;
  double hi;
  int num_basis;
  int degree;
};

class BSplinePropertyTest
    : public ::testing::TestWithParam<BasisParams> {};

TEST_P(BSplinePropertyTest, PartitionOfUnityHolds) {
  const BasisParams& p = GetParam();
  BSplineBasis basis(p.lo, p.hi, p.num_basis, p.degree);
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    double x = rng.Uniform(p.lo, p.hi);
    auto values = basis.Evaluate(x);
    double sum = 0.0;
    for (double v : values) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, BSplinePropertyTest,
    ::testing::Values(BasisParams{0.0, 1.0, 5, 3},
                      BasisParams{-10.0, 10.0, 8, 3},
                      BasisParams{100.0, 100.5, 20, 3},
                      BasisParams{-1e3, 1e3, 12, 3},
                      BasisParams{0.0, 1.0, 6, 2},
                      BasisParams{0.0, 1.0, 4, 1},
                      BasisParams{-5.0, -1.0, 16, 3},
                      BasisParams{0.25, 0.75, 30, 3}));

}  // namespace
}  // namespace gef
