// Tests for full-explanation (de)serialization and the |F'| suggestion
// helper.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "gef/explanation_io.h"
#include "gef/feature_selection.h"
#include "gef/local_explanation.h"

namespace gef {
namespace {

class ExplanationIoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    Dataset data = MakeGPrimeDataset(2500, &rng);
    GbdtConfig fc;
    fc.num_trees = 50;
    fc.num_leaves = 8;
    forest_ = TrainGbdt(data, nullptr, fc).forest;
    GefConfig config;
    config.num_univariate = 4;
    config.num_bivariate = 2;
    config.num_samples = 3000;
    config.k = 24;
    explanation_ = ExplainForest(forest_, config);
    ASSERT_NE(explanation_, nullptr);
  }

  Forest forest_;
  std::unique_ptr<GefExplanation> explanation_;
};

TEST_F(ExplanationIoFixture, RoundTripPreservesStructure) {
  auto restored = ExplanationFromString(
      ExplanationToString(*explanation_));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const GefExplanation& r = **restored;
  EXPECT_EQ(r.selected_features, explanation_->selected_features);
  EXPECT_EQ(r.selected_pairs, explanation_->selected_pairs);
  EXPECT_EQ(r.univariate_term_index,
            explanation_->univariate_term_index);
  EXPECT_EQ(r.bivariate_term_index, explanation_->bivariate_term_index);
  EXPECT_EQ(r.is_categorical, explanation_->is_categorical);
  EXPECT_EQ(r.domains, explanation_->domains);
  EXPECT_DOUBLE_EQ(r.fidelity_rmse_test,
                   explanation_->fidelity_rmse_test);
  EXPECT_DOUBLE_EQ(r.fidelity_rmse_train,
                   explanation_->fidelity_rmse_train);
}

TEST_F(ExplanationIoFixture, RestoredExplanationPredictsIdentically) {
  auto restored = ExplanationFromString(
      ExplanationToString(*explanation_));
  ASSERT_TRUE(restored.ok());
  Rng rng(78);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> x(5);
    for (double& v : x) v = rng.Uniform();
    EXPECT_NEAR((*restored)->gam().PredictRaw(x),
                explanation_->gam().PredictRaw(x), 1e-12);
  }
}

TEST_F(ExplanationIoFixture, RestoredExplanationSupportsLocalExplain) {
  auto restored = ExplanationFromString(
      ExplanationToString(*explanation_));
  ASSERT_TRUE(restored.ok());
  std::vector<double> x = {0.3, 0.7, 0.45, 0.2, 0.9};
  LocalExplanation a = ExplainInstance(*explanation_, forest_, x);
  LocalExplanation b = ExplainInstance(**restored, forest_, x);
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (size_t t = 0; t < a.terms.size(); ++t) {
    EXPECT_EQ(a.terms[t].label, b.terms[t].label);
    EXPECT_NEAR(a.terms[t].contribution, b.terms[t].contribution, 1e-12);
    EXPECT_NEAR(a.terms[t].delta_plus, b.terms[t].delta_plus, 1e-12);
  }
}

TEST_F(ExplanationIoFixture, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "gef_expl_test.txt")
          .string();
  ASSERT_TRUE(SaveExplanation(*explanation_, path).ok());
  auto restored = LoadExplanation(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->selected_features,
            explanation_->selected_features);
  std::remove(path.c_str());
}

TEST_F(ExplanationIoFixture, TruncatedInputRejected) {
  std::string text = ExplanationToString(*explanation_);
  EXPECT_FALSE(ExplanationFromString(text.substr(0, 40)).ok());
  // Cut inside the GAM section.
  EXPECT_FALSE(
      ExplanationFromString(text.substr(0, text.size() - 50)).ok());
}

TEST_F(ExplanationIoFixture, InconsistentListsRejected) {
  std::string text = ExplanationToString(*explanation_);
  // Drop one selected feature: list lengths disagree.
  size_t pos = text.find("selected 4");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("selected 4").size(), "selected 3");
  EXPECT_FALSE(ExplanationFromString(text).ok());
}

TEST(ExplanationIoTest, MissingFileIsIoError) {
  auto result = LoadExplanation("/nonexistent/e.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SuggestNumUnivariateTest, CoversDominantGain) {
  // Feature 0 carries 90% of gain, feature 1 the rest.
  Tree t = Tree::Stump(0.0, 100);
  auto [l, r] = t.SplitLeaf(0, 0, 0.5, 9.0, 0.0, 0.0, 50, 50);
  t.SplitLeaf(l, 1, 0.2, 1.0, 0.0, 1.0, 25, 25);
  (void)r;
  std::vector<Tree> trees;
  trees.push_back(std::move(t));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 3, {});
  EXPECT_EQ(SuggestNumUnivariate(forest, 0.9), 1);
  EXPECT_EQ(SuggestNumUnivariate(forest, 0.95), 2);
  EXPECT_EQ(SuggestNumUnivariate(forest, 1.0), 2);  // zero-gain excluded
}

TEST(SuggestNumUnivariateTest, SplitlessForestSuggestsOne) {
  std::vector<Tree> trees;
  trees.push_back(Tree::Stump(1.0));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 4, {});
  EXPECT_EQ(SuggestNumUnivariate(forest), 1);
}

TEST(SuggestNumUnivariateTest, MatchesSparseSignalOnTrainedForest) {
  Rng rng(79);
  // 8 features, only 2 informative: suggestion should be small.
  Dataset data(8);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> x(8);
    for (double& v : x) v = rng.Uniform();
    data.AppendRow(x, 4.0 * x[1] + 3.0 * x[5]);
  }
  GbdtConfig fc;
  fc.num_trees = 40;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  int suggested = SuggestNumUnivariate(forest, 0.95);
  EXPECT_LE(suggested, 4);
  EXPECT_GE(suggested, 2);
}

}  // namespace
}  // namespace gef
