// Tests for the Greenwald–Khanna quantile sketch: rank-error guarantees
// (property-swept over distributions and epsilons), compression, and
// merging.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "stats/quantile.h"
#include "stats/quantile_sketch.h"
#include "stats/rng.h"

namespace gef {
namespace {

// Rank of `value` within sorted `data` (count of elements <= value).
double RankOf(const std::vector<double>& sorted, double value) {
  return static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), value) -
      sorted.begin());
}

TEST(QuantileSketchTest, ExactOnSmallStreams) {
  QuantileSketch sketch(0.05);
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) sketch.Add(v);
  EXPECT_EQ(sketch.count(), 5u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 3.0);
}

struct SketchParams {
  double epsilon;
  int distribution;  // 0 uniform, 1 normal, 2 clustered, 3 sorted
};

class QuantileSketchPropertyTest
    : public ::testing::TestWithParam<SketchParams> {};

TEST_P(QuantileSketchPropertyTest, RankErrorWithinBound) {
  const SketchParams& p = GetParam();
  Rng rng(500 + p.distribution);
  const size_t n = 20000;
  std::vector<double> data;
  data.reserve(n);
  QuantileSketch sketch(p.epsilon);
  for (size_t i = 0; i < n; ++i) {
    double v = 0.0;
    switch (p.distribution) {
      case 0:
        v = rng.Uniform();
        break;
      case 1:
        v = rng.Normal();
        break;
      case 2:  // two tight clusters, like a sigmoid forest's thresholds
        v = rng.Uniform() < 0.9 ? rng.Normal(0.5, 0.01)
                                : rng.Uniform();
        break;
      case 3:  // adversarial sorted input
        v = static_cast<double>(i);
        break;
    }
    data.push_back(v);
    sketch.Add(v);
  }
  std::sort(data.begin(), data.end());

  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double estimate = sketch.Quantile(q);
    double rank = RankOf(data, estimate);
    double target = q * static_cast<double>(n);
    // GK guarantee: |rank - target| <= eps*N (we allow 2x for the
    // simplified compression).
    EXPECT_LE(std::fabs(rank - target),
              2.0 * p.epsilon * static_cast<double>(n) + 2.0)
        << "q = " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, QuantileSketchPropertyTest,
    ::testing::Values(SketchParams{0.01, 0}, SketchParams{0.01, 1},
                      SketchParams{0.01, 2}, SketchParams{0.01, 3},
                      SketchParams{0.05, 0}, SketchParams{0.05, 1},
                      SketchParams{0.001, 0}, SketchParams{0.05, 3}));

TEST(QuantileSketchTest, CompressionBoundsMemory) {
  QuantileSketch sketch(0.01);
  Rng rng(501);
  for (int i = 0; i < 100000; ++i) sketch.Add(rng.Uniform());
  // O((1/eps) log(eps N)) tuples: far fewer than N.
  EXPECT_LT(sketch.size(), 5000u);
  EXPECT_EQ(sketch.count(), 100000u);
}

TEST(QuantileSketchTest, InnerQuantilesSortedAndInRange) {
  QuantileSketch sketch(0.01);
  Rng rng(502);
  for (int i = 0; i < 5000; ++i) sketch.Add(rng.Normal());
  auto quantiles = sketch.InnerQuantiles(15);
  ASSERT_EQ(quantiles.size(), 15u);
  EXPECT_TRUE(std::is_sorted(quantiles.begin(), quantiles.end()));
}

TEST(QuantileSketchTest, AgreesWithExactQuantilesOnUniform) {
  QuantileSketch sketch(0.005);
  Rng rng(503);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    double v = rng.Uniform();
    data.push_back(v);
    sketch.Add(v);
  }
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(sketch.Quantile(q), Quantile(data, q), 0.02);
  }
}

TEST(QuantileSketchTest, MergePreservesApproximateQuantiles) {
  Rng rng(504);
  QuantileSketch a(0.01), b(0.01);
  std::vector<double> all;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Normal(0.0, 1.0);
    a.Add(v);
    all.push_back(v);
  }
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Normal(3.0, 1.0);
    b.Add(v);
    all.push_back(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 20000u);
  std::sort(all.begin(), all.end());
  for (double q : {0.25, 0.5, 0.75}) {
    double estimate = a.Quantile(q);
    double rank = RankOf(all, estimate);
    EXPECT_NEAR(rank, q * 20000.0, 0.04 * 20000.0) << "q = " << q;
  }
}

TEST(QuantileSketchDeathTest, InvalidEpsilonAborts) {
  EXPECT_DEATH(QuantileSketch(0.0), "");
  EXPECT_DEATH(QuantileSketch(0.7), "");
}

TEST(QuantileSketchDeathTest, EmptySketchQuantileAborts) {
  QuantileSketch sketch(0.01);
  EXPECT_DEATH(sketch.Quantile(0.5), "");
}

}  // namespace
}  // namespace gef
