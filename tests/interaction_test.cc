// Tests for the four interaction-detection strategies.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "forest/threshold_index.h"
#include "gef/interaction.h"
#include "gef/sampling.h"

namespace gef {
namespace {

// Tree: root splits f0; left child splits f1; right child splits f2.
// Count-Path pairs: (f0,f1): 1, (f0,f2): 1, (f1,f2): 0.
Forest PathForest() {
  Tree t = Tree::Stump(0.0, 100);
  auto [l, r] = t.SplitLeaf(0, 0, 0.5, 8.0, 0.0, 0.0, 50, 50);
  t.SplitLeaf(l, 1, 0.3, 4.0, 0.0, 1.0, 25, 25);
  t.SplitLeaf(r, 2, 0.6, 2.0, 0.0, 1.0, 25, 25);
  std::vector<Tree> trees;
  trees.push_back(std::move(t));
  return Forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 3, {});
}

double ScoreOf(const std::vector<ScoredPair>& ranked, int a, int b) {
  for (const auto& p : ranked) {
    if (p.feature_a == std::min(a, b) && p.feature_b == std::max(a, b)) {
      return p.score;
    }
  }
  ADD_FAILURE() << "pair (" << a << "," << b << ") not found";
  return -1.0;
}

TEST(CountPathTest, HandComputedCounts) {
  Forest forest = PathForest();
  auto ranked = RankInteractions(forest, {0, 1, 2},
                                 InteractionStrategy::kCountPath, nullptr);
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 0, 2), 1.0);
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 1, 2), 0.0);
}

TEST(GainPathTest, HandComputedMinGains) {
  Forest forest = PathForest();
  auto ranked = RankInteractions(forest, {0, 1, 2},
                                 InteractionStrategy::kGainPath, nullptr);
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 0, 1), 4.0);  // min(8, 4)
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 0, 2), 2.0);  // min(8, 2)
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 1, 2), 0.0);
}

TEST(PairGainTest, SumsIndividualImportances) {
  Forest forest = PathForest();
  auto ranked = RankInteractions(forest, {0, 1, 2},
                                 InteractionStrategy::kPairGain, nullptr);
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 0, 1), 12.0);  // 8 + 4
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 0, 2), 10.0);
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 1, 2), 6.0);
}

TEST(CountPathTest, RepeatedFeatureOnPathNotSelfPaired) {
  // Root f0, child f0 again, grandchild f1. Self-pairs are excluded.
  Tree t = Tree::Stump(0.0, 100);
  auto [l, r] = t.SplitLeaf(0, 0, 0.5, 8.0, 0.0, 0.0, 50, 50);
  auto [ll, lr] = t.SplitLeaf(l, 0, 0.3, 4.0, 0.0, 0.0, 25, 25);
  t.SplitLeaf(ll, 1, 0.2, 2.0, 0.0, 1.0, 12, 13);
  (void)r;
  (void)lr;
  std::vector<Tree> trees;
  trees.push_back(std::move(t));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 2, {});
  auto ranked = RankInteractions(forest, {0, 1},
                                 InteractionStrategy::kCountPath, nullptr);
  // (f0, f1) counted once from each of the two f0 ancestors.
  EXPECT_DOUBLE_EQ(ScoreOf(ranked, 0, 1), 2.0);
}

TEST(InteractionTest, ScoresAccumulateAcrossTrees) {
  Forest one = PathForest();
  std::vector<Tree> trees = one.trees();
  trees.push_back(trees[0]);
  Forest two(std::move(trees), 0.0, Objective::kRegression,
             Aggregation::kSum, 3, {});
  auto r1 = RankInteractions(one, {0, 1, 2},
                             InteractionStrategy::kCountPath, nullptr);
  auto r2 = RankInteractions(two, {0, 1, 2},
                             InteractionStrategy::kCountPath, nullptr);
  EXPECT_DOUBLE_EQ(ScoreOf(r2, 0, 1), 2.0 * ScoreOf(r1, 0, 1));
}

TEST(InteractionTest, RankingSortedDescendingDeterministically) {
  Forest forest = PathForest();
  for (auto strategy :
       {InteractionStrategy::kPairGain, InteractionStrategy::kCountPath,
        InteractionStrategy::kGainPath}) {
    auto ranked = RankInteractions(forest, {0, 1, 2}, strategy, nullptr);
    ASSERT_EQ(ranked.size(), 3u);
    for (size_t i = 1; i < ranked.size(); ++i) {
      EXPECT_GE(ranked[i - 1].score, ranked[i].score);
    }
  }
}

TEST(InteractionTest, HeredityRestrictsCandidates) {
  Forest forest = PathForest();
  // Only features {0, 1} as candidates: one single pair.
  auto ranked = RankInteractions(forest, {0, 1},
                                 InteractionStrategy::kCountPath, nullptr);
  EXPECT_EQ(ranked.size(), 1u);
}

TEST(InteractionTest, SelectTopInteractionsTruncates) {
  Forest forest = PathForest();
  auto top = SelectTopInteractions(forest, {0, 1, 2},
                                   InteractionStrategy::kGainPath, 2,
                                   nullptr);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(top[1], (std::pair<int, int>{0, 2}));
  EXPECT_TRUE(SelectTopInteractions(forest, {0, 1, 2},
                                    InteractionStrategy::kGainPath, 0,
                                    nullptr)
                  .empty());
}

TEST(InteractionDeathTest, HStatWithoutSampleAborts) {
  Forest forest = PathForest();
  EXPECT_DEATH(RankInteractions(forest, {0, 1, 2},
                                InteractionStrategy::kHStat, nullptr),
               "sample");
}

TEST(InteractionTest, StrategiesDetectInjectedInteraction) {
  // Train with a strong multiplicative interaction between indices 0 and
  // 2; every structural strategy should rank it in the top 3 of 10.
  // (The paper's bump h is nearly additive — the hard setting its AP
  // study quantifies — so this test injects a crisper interaction.)
  Rng rng(701);
  Dataset data(std::vector<std::string>{"x1", "x2", "x3", "x4", "x5"});
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> x(5);
    for (double& v : x) v = rng.Uniform();
    double y = GPrime(x) + 5.0 * (x[0] - 0.5) * (x[2] - 0.5) +
               rng.Normal(0.0, 0.05);
    data.AppendRow(x, y);
  }
  GbdtConfig config;
  config.num_trees = 120;
  config.num_leaves = 16;
  config.learning_rate = 0.15;
  config.min_samples_leaf = 10;
  Forest forest = TrainGbdt(data, nullptr, config).forest;

  std::vector<int> candidates = {0, 1, 2, 3, 4};
  for (auto strategy : {InteractionStrategy::kCountPath,
                        InteractionStrategy::kGainPath}) {
    auto ranked = RankInteractions(forest, candidates, strategy, nullptr);
    size_t position = ranked.size();
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].feature_a == 0 && ranked[i].feature_b == 2) {
        position = i;
        break;
      }
    }
    EXPECT_LT(position, 3u) << InteractionStrategyName(strategy);
  }

  // H-Stat on a D* sample should find it too (it is the most principled).
  ThresholdIndex index(forest);
  auto domains = BuildAllDomains(forest, index,
                                 SamplingStrategy::kKQuantile, 16, 0.05,
                                 &rng);
  Dataset dstar = GenerateSyntheticDataset(forest, domains, 60, &rng);
  auto ranked = RankInteractions(forest, candidates,
                                 InteractionStrategy::kHStat, &dstar);
  EXPECT_EQ(ranked[0].feature_a, 0);
  EXPECT_EQ(ranked[0].feature_b, 2);
}

// Brute-force references for Count-Path / Gain-Path: enumerate every
// (ancestor, descendant) internal-node pair directly.
void BruteForcePathScores(const Tree& tree, bool weighted,
                          std::map<std::pair<int, int>, double>* scores) {
  auto descendants = [&tree](int root) {
    std::vector<int> out, stack = {root};
    while (!stack.empty()) {
      int index = stack.back();
      stack.pop_back();
      const TreeNode& node = tree.node(index);
      if (node.is_leaf()) continue;
      if (index != root) out.push_back(index);
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
    return out;
  };
  for (size_t u = 0; u < tree.num_nodes(); ++u) {
    const TreeNode& top = tree.node(u);
    if (top.is_leaf()) continue;
    for (int w : descendants(static_cast<int>(u))) {
      const TreeNode& node = tree.node(w);
      if (node.feature == top.feature) continue;
      auto key = std::minmax(top.feature, node.feature);
      (*scores)[{key.first, key.second}] +=
          weighted ? std::min(top.gain, node.gain) : 1.0;
    }
  }
}

TEST(InteractionTest, CountAndGainPathMatchBruteForceOnTrainedTrees) {
  Rng rng(702);
  Dataset data = MakeGPrimeDataset(1200, &rng);
  GbdtConfig config;
  config.num_trees = 12;
  config.num_leaves = 12;
  config.min_samples_leaf = 5;
  Forest forest = TrainGbdt(data, nullptr, config).forest;

  for (bool weighted : {false, true}) {
    std::map<std::pair<int, int>, double> reference;
    for (const Tree& tree : forest.trees()) {
      BruteForcePathScores(tree, weighted, &reference);
    }
    auto ranked = RankInteractions(
        forest, {0, 1, 2, 3, 4},
        weighted ? InteractionStrategy::kGainPath
                 : InteractionStrategy::kCountPath,
        nullptr);
    for (const ScoredPair& pair : ranked) {
      auto it = reference.find({pair.feature_a, pair.feature_b});
      double expected = it == reference.end() ? 0.0 : it->second;
      EXPECT_NEAR(pair.score, expected, 1e-9)
          << "pair (" << pair.feature_a << "," << pair.feature_b
          << "), weighted=" << weighted;
    }
  }
}

TEST(InteractionTest, StrategyNamesDistinct) {
  std::set<std::string> names;
  for (auto s : AllInteractionStrategies()) {
    names.insert(InteractionStrategyName(s));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace gef
