// Regression tests for the GAM fitting fast path: the block-sparse
// design must reproduce the dense design exactly, the sparse Gram/RHS
// kernels must agree with their dense counterparts, fits must be
// bit-identical at every thread count, and an identity-link Fit must
// build its Gram exactly once across the whole GCV grid and per-term
// coordinate descent (the hoisting contract — `gam.gram_builds`).

#include <cmath>
#include <memory>
#include <numbers>
#include <string>

#include <gtest/gtest.h>

#include "gam/design.h"
#include "gam/fit_workspace.h"
#include "gam/gam.h"
#include "gam/gam_io.h"
#include "linalg/block_sparse.h"
#include "linalg/cholesky.h"
#include "obs/obs.h"
#include "stats/rng.h"
#include "util/parallel.h"

namespace gef {
namespace {

// Mixed-term dataset: two continuous features, one 3-level categorical.
Dataset MixedData(size_t n, Rng* rng) {
  Dataset d(std::vector<std::string>{"x0", "x1", "cat"});
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng->Uniform();
    double x1 = rng->Uniform();
    double cat = std::floor(rng->Uniform() * 3.0);
    double y = std::sin(2.0 * std::numbers::pi * x0) + x1 * x1 +
               0.5 * cat + 0.8 * x0 * x1 + rng->Normal(0.0, 0.05);
    d.AppendRow({x0, x1, cat}, y);
  }
  return d;
}

// One of every term type, exercising every sparse row-block shape.
TermList MixedTerms() {
  TermList terms;
  terms.push_back(std::make_unique<InterceptTerm>());
  terms.push_back(std::make_unique<SplineTerm>(0, 0.0, 1.0, 10));
  terms.push_back(std::make_unique<SplineTerm>(1, 0.0, 1.0, 10));
  terms.push_back(
      std::make_unique<FactorTerm>(2, std::vector<double>{0.0, 1.0, 2.0}));
  terms.push_back(
      std::make_unique<TensorTerm>(0, 0.0, 1.0, 1, 0.0, 1.0, 6));
  return terms;
}

GamConfig FastpathConfig() {
  GamConfig config;  // identity link
  config.lambda_grid = {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4};
  config.per_term_lambda = true;
  return config;
}

TEST(GamFastpathTest, SparseDesignExpandsToDenseDesign) {
  Rng rng(401);
  Dataset data = MixedData(600, &rng);
  TermList terms = MixedTerms();
  DesignLayout layout = ComputeLayout(terms);
  Matrix dense = BuildRawDesign(terms, data, layout);
  SparseDesign sparse = BuildSparseDesign(terms, data, layout);
  Matrix expanded = sparse.matrix.ToDense();
  ASSERT_EQ(expanded.rows(), dense.rows());
  ASSERT_EQ(expanded.cols(), dense.cols());
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); ++j) {
      ASSERT_EQ(expanded(i, j), dense(i, j))
          << "row " << i << " col " << j;
    }
  }
  // Term slot ranges cover all slots in order.
  ASSERT_EQ(sparse.term_first_slot.size(), terms.size() + 1);
  EXPECT_EQ(sparse.term_first_slot.front(), 0);
  EXPECT_EQ(sparse.term_first_slot.back(), sparse.matrix.num_slots());
}

TEST(GamFastpathTest, SparseKernelsMatchDense) {
  Rng rng(402);
  Dataset data = MixedData(500, &rng);
  TermList terms = MixedTerms();
  DesignLayout layout = ComputeLayout(terms);
  Matrix dense = BuildRawDesign(terms, data, layout);
  SparseDesign sparse = BuildSparseDesign(terms, data, layout);

  Vector w(data.num_rows()), y(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    w[i] = 0.1 + rng.Uniform();
    y[i] = rng.Normal();
  }

  Matrix dense_gram = GramWeighted(dense, w);
  Matrix sparse_gram = GramWeighted(sparse.matrix, w);
  ASSERT_EQ(sparse_gram.rows(), dense_gram.rows());
  for (size_t i = 0; i < dense_gram.rows(); ++i) {
    for (size_t j = 0; j < dense_gram.cols(); ++j) {
      EXPECT_NEAR(sparse_gram(i, j), dense_gram(i, j),
                  1e-10 * (1.0 + std::fabs(dense_gram(i, j))));
    }
  }

  Vector dense_rhs = GramWeightedRhs(dense, w, y);
  Vector sparse_rhs = GramWeightedRhs(sparse.matrix, w, y);
  for (size_t j = 0; j < dense_rhs.size(); ++j) {
    EXPECT_NEAR(sparse_rhs[j], dense_rhs[j],
                1e-10 * (1.0 + std::fabs(dense_rhs[j])));
  }

  Vector beta(layout.total_cols);
  for (double& b : beta) b = rng.Normal();
  Vector dense_fit = MatVec(dense, beta);
  Vector sparse_fit = MatVec(sparse.matrix, beta);
  for (size_t i = 0; i < dense_fit.size(); ++i) {
    EXPECT_NEAR(sparse_fit[i], dense_fit[i],
                1e-10 * (1.0 + std::fabs(dense_fit[i])));
  }
}

TEST(GamFastpathTest, SlotViewKernelsMatchDenseBlocks) {
  Rng rng(403);
  Dataset data = MixedData(400, &rng);
  TermList terms = MixedTerms();
  DesignLayout layout = ComputeLayout(terms);
  Matrix dense = BuildRawDesign(terms, data, layout);
  SparseDesign sparse = BuildSparseDesign(terms, data, layout);

  Vector x(data.num_rows());
  for (double& v : x) v = rng.Normal();

  for (size_t t = 0; t < terms.size(); ++t) {
    const int offset = layout.term_offsets[t];
    const int width = terms[t]->num_coeffs();
    Matrix block(dense.rows(), width);
    for (size_t i = 0; i < dense.rows(); ++i) {
      for (int j = 0; j < width; ++j) block(i, j) = dense(i, offset + j);
    }
    Matrix view_gram =
        GramWeightedSlots(sparse.matrix, sparse.TermSlotBegin(t),
                          sparse.TermSlotEnd(t), offset, width, {});
    Matrix dense_gram = GramWeighted(block, {});
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        EXPECT_NEAR(view_gram(a, b), dense_gram(a, b),
                    1e-10 * (1.0 + std::fabs(dense_gram(a, b))))
            << "term " << t;
      }
    }
    Vector view_rhs =
        MatTVecSlots(sparse.matrix, sparse.TermSlotBegin(t),
                     sparse.TermSlotEnd(t), offset, width, x);
    Vector dense_rhs = MatTVec(block, x);
    Vector beta(width);
    for (double& b : beta) b = rng.Normal();
    Vector view_fit = MatVecSlots(sparse.matrix, sparse.TermSlotBegin(t),
                                  sparse.TermSlotEnd(t), offset, beta);
    Vector dense_fit = MatVec(block, beta);
    for (int j = 0; j < width; ++j) {
      EXPECT_NEAR(view_rhs[j], dense_rhs[j],
                  1e-10 * (1.0 + std::fabs(dense_rhs[j]))) << "term " << t;
    }
    for (size_t i = 0; i < dense_fit.size(); ++i) {
      EXPECT_NEAR(view_fit[i], dense_fit[i],
                  1e-10 * (1.0 + std::fabs(dense_fit[i]))) << "term " << t;
    }
  }
}

TEST(GamFastpathTest, CenteredWorkspaceMatchesExplicitCentering) {
  Rng rng(404);
  Dataset data = MixedData(500, &rng);
  TermList terms = MixedTerms();
  DesignLayout layout = ComputeLayout(terms);
  FitWorkspace ws = BuildFitWorkspace(terms, data, layout);

  Matrix dense = BuildRawDesign(terms, data, layout);
  std::vector<double> centers = ComputeCenters(dense, terms, layout);
  CenterDesign(&dense, centers);

  for (size_t j = 0; j < centers.size(); ++j) {
    EXPECT_NEAR(ws.centers[j], centers[j], 1e-12);
  }

  Vector w(data.num_rows());
  for (double& v : w) v = 0.05 + rng.Uniform();
  const Vector& y = data.targets();

  Matrix want_gram = GramWeighted(dense, w);
  Matrix got_gram = CenteredGramWeighted(ws, w);
  for (size_t a = 0; a < want_gram.rows(); ++a) {
    for (size_t b = 0; b < want_gram.cols(); ++b) {
      EXPECT_NEAR(got_gram(a, b), want_gram(a, b),
                  1e-8 * (1.0 + std::fabs(want_gram(a, b))));
    }
  }
  // The correction is applied to the upper triangle and mirrored, so the
  // result must be exactly symmetric.
  for (size_t a = 0; a < got_gram.rows(); ++a) {
    for (size_t b = a + 1; b < got_gram.cols(); ++b) {
      ASSERT_EQ(got_gram(a, b), got_gram(b, a));
    }
  }

  Vector want_rhs = GramWeightedRhs(dense, w, y);
  Vector got_rhs = CenteredGramWeightedRhs(ws, w, y);
  for (size_t j = 0; j < want_rhs.size(); ++j) {
    EXPECT_NEAR(got_rhs[j], want_rhs[j],
                1e-8 * (1.0 + std::fabs(want_rhs[j])));
  }

  Vector beta(layout.total_cols);
  for (double& b : beta) b = rng.Normal();
  Vector want_fit = MatVec(dense, beta);
  Vector got_fit = CenteredMatVec(ws, beta);
  for (size_t i = 0; i < want_fit.size(); ++i) {
    EXPECT_NEAR(got_fit[i], want_fit[i],
                1e-8 * (1.0 + std::fabs(want_fit[i])));
  }
}

TEST(GamFastpathTest, FitBitIdenticalAcrossThreadCounts) {
  Rng rng(405);
  Dataset data = MixedData(900, &rng);
  GamConfig config = FastpathConfig();

  SetNumThreads(1);
  Gam serial;
  ASSERT_TRUE(serial.Fit(MixedTerms(), data, config));
  SetNumThreads(4);
  Gam parallel;
  ASSERT_TRUE(parallel.Fit(MixedTerms(), data, config));
  SetNumThreads(0);

  // The serialized state covers coefficients, centers, per-term λ,
  // covariance and importances at full precision: string equality means
  // every fitted double is bit-identical.
  EXPECT_EQ(serial.lambda(), parallel.lambda());
  EXPECT_EQ(serial.gcv_score(), parallel.gcv_score());
  ASSERT_EQ(serial.term_lambdas().size(), parallel.term_lambdas().size());
  for (size_t t = 0; t < serial.term_lambdas().size(); ++t) {
    EXPECT_EQ(serial.term_lambdas()[t], parallel.term_lambdas()[t]);
  }
  EXPECT_EQ(GamToString(serial), GamToString(parallel));
}

TEST(GamFastpathTest, IdentityFitBuildsGramExactlyOnce) {
  Rng rng(406);
  Dataset data = MixedData(700, &rng);
  GamConfig config = FastpathConfig();  // 8-λ grid + coordinate descent

  obs::Enable("");
  obs::Flush();  // clear anything previous tests recorded
  Gam gam;
  ASSERT_TRUE(gam.Fit(MixedTerms(), data, config));
  obs::Aggregates aggregates = obs::Flush();
  obs::Disable();

  // The hoisting contract: one centered Gram build covers the entire
  // 8-candidate grid plus every coordinate-descent trial.
  EXPECT_EQ(aggregates.Counter("gam.gram_builds"), 1.0);
  // Sanity: the grid actually ran (one GCV point per candidate).
  EXPECT_GE(aggregates.metric_points.at("gam.gcv_trace"),
            config.lambda_grid.size());
}

TEST(GamFastpathTest, TraceOfProductSolveMatchesExplicitInverse) {
  Rng rng(407);
  const size_t p = 24;
  Matrix a(p, p);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) a(i, j) = rng.Normal();
  }
  Matrix spd = GramWeighted(a, {});
  for (size_t i = 0; i < p; ++i) spd(i, i) += static_cast<double>(p);
  Matrix b(p, p);
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < p; ++j) b(i, j) = rng.Normal();
  }
  auto chol = Cholesky::Factorize(spd);
  ASSERT_TRUE(chol.has_value());
  Matrix product = MatMul(chol->Inverse(), b);
  double want = 0.0;
  for (size_t i = 0; i < p; ++i) want += product(i, i);
  EXPECT_NEAR(chol->TraceOfProductSolve(b), want,
              1e-9 * (1.0 + std::fabs(want)));
}

}  // namespace
}  // namespace gef
