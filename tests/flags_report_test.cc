// Tests for the flag parser and the explanation report/CSV export.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "gef/explainer.h"
#include "gef/report.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace gef {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "tool");
  auto flags = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.ok());
  return std::move(flags).value();
}

TEST(FlagsTest, SpaceAndEqualsForms) {
  Flags flags = ParseArgs({"--model", "m.txt", "--k=32"});
  EXPECT_EQ(flags.GetString("model", ""), "m.txt");
  EXPECT_EQ(flags.GetInt("k", 0), 32);
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  Flags flags = ParseArgs({"--verbose", "--model", "m.txt"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("model", ""), "m.txt");
}

TEST(FlagsTest, FallbacksForMissingFlags) {
  Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("k", 7), 7);
  EXPECT_EQ(flags.GetString("model", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.5), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose", false));
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Flags flags = ParseArgs({"input.csv", "--k", "3", "more"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(FlagsTest, UnreadFlagsDetected) {
  Flags flags = ParseArgs({"--known", "1", "--typo", "2"});
  flags.GetInt("known", 0);
  auto unread = flags.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "typo");
}

TEST(FlagsTest, DoubleValues) {
  Flags flags = ParseArgs({"--lr", "0.05"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 1.0), 0.05);
}

TEST(FlagsTest, BadIntegerRecordsStatus) {
  Flags flags = ParseArgs({"--k", "abc"});
  EXPECT_TRUE(flags.status().ok());
  EXPECT_EQ(flags.GetInt("k", 7), 7);  // fallback, not abort
  EXPECT_FALSE(flags.status().ok());
  EXPECT_NE(flags.status().message().find("expects an integer"),
            std::string::npos);
  EXPECT_NE(flags.status().message().find("abc"), std::string::npos);
}

TEST(FlagsTest, BadDoubleRecordsStatus) {
  Flags flags = ParseArgs({"--lr", "fast", "--depth", "x"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.5), 0.5);
  flags.GetInt("depth", 3);
  // First error wins; later malformed values do not overwrite it.
  EXPECT_FALSE(flags.status().ok());
  EXPECT_NE(flags.status().message().find("--lr"), std::string::npos);
}

TEST(FlagsTest, BareDoubleDashRejected) {
  std::vector<const char*> args = {"tool", "--"};
  auto flags = Flags::Parse(2, args.data());
  EXPECT_FALSE(flags.ok());
}

class ReportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(55);
    Dataset data = MakeGPrimeDataset(2000, &rng);
    GbdtConfig fc;
    fc.num_trees = 50;
    fc.num_leaves = 8;
    forest_ = TrainGbdt(data, nullptr, fc).forest;
    GefConfig config;
    config.num_univariate = 3;
    config.num_bivariate = 1;
    config.num_samples = 2000;
    config.k = 16;
    explanation_ = ExplainForest(forest_, config);
    ASSERT_NE(explanation_, nullptr);
  }

  Forest forest_;
  std::unique_ptr<GefExplanation> explanation_;
};

TEST_F(ReportFixture, DescribeContainsKeySections) {
  std::string report = DescribeExplanation(*explanation_, forest_);
  EXPECT_NE(report.find("Surrogate fidelity"), std::string::npos);
  EXPECT_NE(report.find("Univariate components"), std::string::npos);
  EXPECT_NE(report.find("Bi-variate components"), std::string::npos);
  EXPECT_NE(report.find("s(x"), std::string::npos);
  EXPECT_NE(report.find("te("), std::string::npos);
  EXPECT_NE(report.find("lambda"), std::string::npos);
}

TEST_F(ReportFixture, CsvExportHasHeaderAndRows) {
  std::string path =
      (std::filesystem::temp_directory_path() / "gef_curves_test.csv")
          .string();
  ASSERT_TRUE(ExportCurvesCsv(*explanation_, forest_, path, 11).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "term,feature,x,x2,effect,lower,upper");

  int univariate_rows = 0, tensor_rows = 0, total = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++total;
    auto fields = Split(line, ',');
    ASSERT_EQ(fields.size(), 7u);
    if (fields[3].empty()) {
      ++univariate_rows;
    } else {
      ++tensor_rows;
    }
    double effect = 0.0, lower = 0.0, upper = 0.0;
    ASSERT_TRUE(ParseDouble(fields[4], &effect));
    ASSERT_TRUE(ParseDouble(fields[5], &lower));
    ASSERT_TRUE(ParseDouble(fields[6], &upper));
    EXPECT_LE(lower, effect);
    EXPECT_GE(upper, effect);
  }
  // 3 univariate terms x 11 points (or level counts), 1 tensor x 121.
  EXPECT_GE(univariate_rows, 3 * 2);
  EXPECT_EQ(tensor_rows, 121);
  EXPECT_EQ(total, univariate_rows + tensor_rows);
  std::remove(path.c_str());
}

TEST_F(ReportFixture, CsvEffectsMatchGamContributions) {
  std::string path =
      (std::filesystem::temp_directory_path() / "gef_curves_test2.csv")
          .string();
  ASSERT_TRUE(ExportCurvesCsv(*explanation_, forest_, path, 5).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // header
  // First data row: first univariate term at its domain minimum.
  std::getline(in, line);
  auto fields = Split(line, ',');
  int feature = explanation_->selected_features[0];
  int term = explanation_->univariate_term_index[0];
  double x = 0.0, effect = 0.0;
  ASSERT_TRUE(ParseDouble(fields[2], &x));
  ASSERT_TRUE(ParseDouble(fields[4], &effect));
  std::vector<double> row(5, 0.0);
  for (size_t f = 0; f < 5; ++f) {
    const auto& domain = explanation_->domains[f];
    row[f] = domain[domain.size() / 2];
  }
  row[feature] = x;
  EXPECT_NEAR(effect, explanation_->gam().TermContribution(term, row),
              1e-9);
  std::remove(path.c_str());
}

TEST_F(ReportFixture, CsvExportToUnwritablePathFails) {
  EXPECT_FALSE(
      ExportCurvesCsv(*explanation_, forest_, "/nonexistent/x.csv").ok());
}

}  // namespace
}  // namespace gef
