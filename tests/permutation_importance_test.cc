// Tests for permutation feature importance and its agreement with the
// gain importance GEF relies on.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "explain/permutation_importance.h"
#include "forest/gbdt_trainer.h"
#include "gef/feature_selection.h"

namespace gef {
namespace {

TEST(PermutationImportanceTest, SignalOutranksNoise) {
  Rng rng(401);
  Dataset data(std::vector<std::string>{"signal", "noise"});
  for (int i = 0; i < 1500; ++i) {
    double s = rng.Uniform();
    data.AppendRow({s, rng.Uniform()}, 4.0 * s);
  }
  GbdtConfig fc;
  fc.num_trees = 30;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  auto importance = PermutationImportance(forest, data);
  EXPECT_GT(importance[0], 0.5);
  EXPECT_LT(std::fabs(importance[1]), 0.1);
}

TEST(PermutationImportanceTest, UnusedFeatureIsExactlyZero) {
  // A feature the forest never splits on cannot change predictions.
  Tree t = Tree::Stump(0.0, 10);
  t.SplitLeaf(0, 0, 0.5, 1.0, 0.0, 1.0, 5, 5);
  std::vector<Tree> trees;
  trees.push_back(std::move(t));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 2, {});
  Rng rng(402);
  Dataset data(2);
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform();
    data.AppendRow({x, rng.Uniform()}, x > 0.5 ? 1.0 : 0.0);
  }
  auto importance = PermutationImportance(forest, data);
  EXPECT_DOUBLE_EQ(importance[1], 0.0);
  EXPECT_GT(importance[0], 0.0);
}

TEST(PermutationImportanceTest, RankingAgreesWithGainOnGPrime) {
  Rng rng(403);
  Dataset data = MakeGPrimeDataset(3000, &rng);
  GbdtConfig fc;
  fc.num_trees = 80;
  fc.num_leaves = 16;
  fc.learning_rate = 0.15;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;

  auto permutation = PermutationImportance(forest, data);
  auto gain_ranked = RankFeaturesByGain(forest);
  // The top gain feature must also top the permutation ranking.
  int top_perm = static_cast<int>(
      std::max_element(permutation.begin(), permutation.end()) -
      permutation.begin());
  EXPECT_EQ(top_perm, gain_ranked[0].feature);
}

TEST(PermutationImportanceTest, ClassificationUsesLogLoss) {
  Rng rng(404);
  Dataset data(std::vector<std::string>{"x", "noise"});
  for (int i = 0; i < 1500; ++i) {
    double x = rng.Uniform();
    data.AppendRow({x, rng.Uniform()}, x > 0.5 ? 1.0 : 0.0);
  }
  GbdtConfig fc;
  fc.objective = Objective::kBinaryClassification;
  fc.num_trees = 30;
  fc.num_leaves = 4;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  auto importance = PermutationImportance(forest, data);
  EXPECT_GT(importance[0], 10.0 * std::max(1e-6, importance[1]));
}

TEST(PermutationImportanceTest, DeterministicGivenSeed) {
  Rng rng(405);
  Dataset data = MakeGPrimeDataset(500, &rng);
  GbdtConfig fc;
  fc.num_trees = 10;
  fc.num_leaves = 4;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  PermutationImportanceConfig config;
  config.seed = 7;
  auto a = PermutationImportance(forest, data, config);
  auto b = PermutationImportance(forest, data, config);
  for (size_t f = 0; f < a.size(); ++f) EXPECT_DOUBLE_EQ(a[f], b[f]);
}

TEST(PermutationImportanceDeathTest, RequiresTargets) {
  Rng rng(406);
  Dataset no_targets(2);
  no_targets.AppendRow({0.1, 0.2});
  no_targets.AppendRow({0.3, 0.4});
  Tree t = Tree::Stump(0.0, 2);
  std::vector<Tree> trees;
  trees.push_back(std::move(t));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 2, {});
  EXPECT_DEATH(PermutationImportance(forest, no_targets), "");
}

}  // namespace
}  // namespace gef
