// Tests for compiled forest inference (DESIGN.md §3.15): SoA flattening,
// the scalar / AVX2 batch kernels, and the bit-identity contract — the
// compiled batch paths must reproduce the pointer-walking per-row
// Predict exactly, for every kernel, thread count and forest shape
// (trained GBDT/RF, LightGBM imports, stumps, deep chains, NaN rows).

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "forest/compiled.h"
#include "forest/compiled_kernels.h"
#include "forest/gbdt_trainer.h"
#include "forest/lightgbm_import.h"
#include "forest/random_forest_trainer.h"
#include "obs/metrics.h"
#include "util/parallel.h"

namespace gef {
namespace {

// Restores environment-driven kernel dispatch and the thread-count
// default when a test exits, so overrides never leak across tests.
struct DispatchGuard {
  ~DispatchGuard() {
    compiled::ClearKernelForTest();
    SetNumThreads(0);
  }
};

// True when the two doubles carry identical bit patterns (stricter than
// ==, which treats -0.0 == 0.0 and NaN != NaN).
bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_PRED2(BitEqual, a[i], b[i]) << "row " << i;
  }
}

// Per-row reference predictions through the original pointer walk.
std::vector<double> ReferenceRaw(const Forest& forest,
                                 const Dataset& dataset) {
  std::vector<double> out(dataset.num_rows());
  std::vector<double> row(dataset.num_features());
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    for (size_t j = 0; j < dataset.num_features(); ++j) {
      row[j] = dataset.Column(j)[i];
    }
    out[i] = forest.PredictRaw(row.data());
  }
  return out;
}

Forest TrainRegressionGbdt(Dataset* test_out) {
  Rng rng(901);
  Dataset data = MakeGPrimeDataset(1200, &rng);
  auto split = SplitTrainTest(data, 0.25, &rng);
  GbdtConfig config;
  config.num_trees = 40;
  config.num_leaves = 16;
  config.learning_rate = 0.15;
  *test_out = std::move(split.test);
  return TrainGbdt(split.train, nullptr, config).forest;
}

TEST(CompiledForestTest, FlattensTrainedForest) {
  Dataset test;
  Forest forest = TrainRegressionGbdt(&test);
  const CompiledForest& compiled = forest.Compiled();
  EXPECT_EQ(compiled.num_trees(), forest.num_trees());
  EXPECT_EQ(compiled.num_features(), forest.num_features());
  size_t total_nodes = 0;
  for (const Tree& tree : forest.trees()) total_nodes += tree.num_nodes();
  EXPECT_EQ(compiled.num_nodes(), total_nodes);
  EXPECT_GT(compiled.compiled_bytes(), 0u);
  // Same object on every call (compiled once, cached).
  EXPECT_EQ(&compiled, &forest.Compiled());
}

TEST(CompiledForestTest, BatchMatchesPerRowBitwise) {
  Dataset test;
  Forest forest = TrainRegressionGbdt(&test);
  ExpectBitIdentical(forest.PredictRawBatch(test), ReferenceRaw(forest, test));
}

TEST(CompiledForestTest, ScalarAndAvx2KernelsBitIdentical) {
  if (!compiled::Avx2Supported()) GTEST_SKIP() << "no AVX2 on this host";
  DispatchGuard guard;
  Dataset test;
  Forest forest = TrainRegressionGbdt(&test);
  compiled::SetKernelForTest(compiled::Kernel::kScalar);
  std::vector<double> scalar = forest.PredictRawBatch(test);
  compiled::SetKernelForTest(compiled::Kernel::kAvx2);
  std::vector<double> avx2 = forest.PredictRawBatch(test);
  ExpectBitIdentical(scalar, avx2);
  ExpectBitIdentical(avx2, ReferenceRaw(forest, test));
}

TEST(CompiledForestTest, ThreadCountDoesNotChangeBits) {
  DispatchGuard guard;
  Dataset test;
  Forest forest = TrainRegressionGbdt(&test);
  SetNumThreads(1);
  std::vector<double> one = forest.PredictRawBatch(test);
  for (int threads : {2, 4}) {
    SetNumThreads(threads);
    ExpectBitIdentical(one, forest.PredictRawBatch(test));
  }
}

TEST(CompiledForestTest, RandomForestAverageParity) {
  Rng rng(902);
  Dataset data = MakeGPrimeDataset(800, &rng);
  auto split = SplitTrainTest(data, 0.25, &rng);
  RandomForestConfig config;
  config.num_trees = 30;
  config.num_leaves = 32;
  Forest forest = TrainRandomForest(split.train, config);
  ASSERT_EQ(forest.aggregation(), Aggregation::kAverage);
  ExpectBitIdentical(forest.PredictRawBatch(split.test),
                     ReferenceRaw(forest, split.test));
}

TEST(CompiledForestTest, BinaryClassificationTaskSpaceParity) {
  Rng rng(903);
  Dataset data(std::vector<std::string>{"x1", "x2"});
  for (int i = 0; i < 900; ++i) {
    double x1 = rng.Uniform();
    double x2 = rng.Uniform();
    data.AppendRow({x1, x2}, (x1 + x2 > 1.0) ? 1.0 : 0.0);
  }
  auto split = SplitTrainTest(data, 0.25, &rng);
  GbdtConfig config;
  config.objective = Objective::kBinaryClassification;
  config.num_trees = 30;
  config.num_leaves = 8;
  config.learning_rate = 0.2;
  Forest forest = TrainGbdt(split.train, nullptr, config).forest;
  std::vector<double> batch = forest.PredictBatch(split.test);
  std::vector<double> raw = ReferenceRaw(forest, split.test);
  ASSERT_EQ(batch.size(), raw.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_PRED2(BitEqual, batch[i], SigmoidTransform(raw[i])) << i;
  }
}

// The miniature LightGBM v3 model of lightgbm_import_test.cc: one split
// tree plus a single-leaf tree (exactly the degenerate shape leaf-wise
// growth produces when the root never splits).
constexpr char kLightGbmModel[] = R"(tree
version=v3
num_class=1
num_tree_per_iteration=1
label_index=0
max_feature_idx=2
objective=regression
feature_names=age income extra
feature_infos=[0:1] [0:1] [0:1]

Tree=0
num_leaves=3
num_cat=0
split_feature=0 1
split_gain=10 4
threshold=0.5 0.3
decision_type=2 2
left_child=-1 -2
right_child=1 -3
leaf_value=1 2 3
leaf_weight=1 1 1
leaf_count=50 20 30
internal_value=0 0
internal_weight=0 0
internal_count=100 50
is_linear=0
shrinkage=1

Tree=1
num_leaves=1
num_cat=0
leaf_value=0.25
leaf_count=100
is_linear=0
shrinkage=1

end of trees

feature_importances:
age=1
income=1
)";

TEST(CompiledForestTest, LightGbmImportParity) {
  auto forest = ParseLightGbmModel(kLightGbmModel);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  Dataset data(forest->feature_names());
  Rng rng(904);
  for (int i = 0; i < 300; ++i) {
    data.AppendRow({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  // Boundary rows: LightGBM's `<=` sends ties left.
  data.AppendRow({0.5, 0.3, 0.0});
  data.AppendRow({0.5, 0.9, 0.0});
  ExpectBitIdentical(forest->PredictRawBatch(data),
                     ReferenceRaw(*forest, data));
  EXPECT_DOUBLE_EQ(forest->PredictRawBatch(data).back(), 1.25);
}

TEST(CompiledForestTest, StumpOnlyForestParity) {
  std::vector<Tree> trees;
  trees.push_back(Tree::Stump(0.5, 10));
  trees.push_back(Tree::Stump(-1.25, 10));
  Forest forest(std::move(trees), 2.0, Objective::kRegression,
                Aggregation::kSum, 3, {});
  Dataset data(forest.feature_names());
  for (int i = 0; i < 20; ++i) data.AppendRow({0.1 * i, 1.0, -1.0});
  std::vector<double> out = forest.PredictRawBatch(data);
  for (double v : out) EXPECT_PRED2(BitEqual, v, 2.0 + 0.5 - 1.25);
  ExpectBitIdentical(out, ReferenceRaw(forest, data));
}

TEST(CompiledForestTest, ZeroTreeForestReturnsBaseScore) {
  Forest sum(std::vector<Tree>{}, 0.75, Objective::kRegression,
             Aggregation::kSum, 2, {});
  Forest average(std::vector<Tree>{}, 0.0, Objective::kRegression,
                 Aggregation::kAverage, 2, {});
  Dataset data(sum.feature_names());
  for (int i = 0; i < 10; ++i) data.AppendRow({1.0, 2.0});
  for (double v : sum.PredictRawBatch(data)) EXPECT_EQ(v, 0.75);
  for (double v : average.PredictRawBatch(data)) EXPECT_EQ(v, 0.0);
}

TEST(CompiledForestTest, NaNRowsRouteRightInBothKernels) {
  DispatchGuard guard;
  Dataset test;
  Forest forest = TrainRegressionGbdt(&test);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Dataset data(forest.feature_names());
  Rng rng(905);
  for (int i = 0; i < 64; ++i) {
    std::vector<double> row;
    for (size_t j = 0; j < forest.num_features(); ++j) {
      // Sprinkle NaNs across features and rows.
      row.push_back((i + static_cast<int>(j)) % 3 == 0 ? nan
                                                       : rng.Uniform());
    }
    data.AppendRow(row);
  }
  std::vector<double> reference = ReferenceRaw(forest, data);
  compiled::SetKernelForTest(compiled::Kernel::kScalar);
  ExpectBitIdentical(forest.PredictRawBatch(data), reference);
  if (compiled::Avx2Supported()) {
    compiled::SetKernelForTest(compiled::Kernel::kAvx2);
    ExpectBitIdentical(forest.PredictRawBatch(data), reference);
  }
}

TEST(CompiledForestTest, DeepChainTreeParity) {
  // A pathological leaf-wise chain: 24 splits on feature 0, each right
  // child splitting again. Exercises the early-exit path hard — most
  // lanes park at shallow leaves while one lane walks the full chain.
  Tree tree = Tree::Stump(0.0, 1);
  int leaf = 0;
  for (int d = 0; d < 24; ++d) {
    auto [left, right] =
        tree.SplitLeaf(leaf, 0, static_cast<double>(d), 1.0,
                       /*left_value=*/static_cast<double>(d),
                       /*right_value=*/100.0 + d, 1, 1);
    (void)left;
    leaf = right;
  }
  std::vector<Tree> trees;
  trees.push_back(std::move(tree));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 1, {});
  Dataset data(forest.feature_names());
  for (int i = -2; i < 30; ++i) data.AppendRow({static_cast<double>(i)});
  ExpectBitIdentical(forest.PredictRawBatch(data),
                     ReferenceRaw(forest, data));
}

TEST(CompiledForestTest, PredictRawRowsHandlesWideStride) {
  Dataset test;
  Forest forest = TrainRegressionGbdt(&test);
  const size_t width = forest.num_features();
  const size_t stride = width + 3;  // trailing garbage must be ignored
  const size_t n = test.num_rows();
  std::vector<double> rows(n * stride, -1e300);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < width; ++j) {
      rows[i * stride + j] = test.Column(j)[i];
    }
  }
  std::vector<double> out(n);
  forest.Compiled().PredictRawRows(rows.data(), n, stride, out.data());
  ExpectBitIdentical(out, ReferenceRaw(forest, test));
}

TEST(CompiledForestTest, CompileRecordsMetrics) {
  const uint64_t before =
      obs::metrics::GetCounter("forest.compiles").Value();
  Dataset test;
  Forest forest = TrainRegressionGbdt(&test);
  const CompiledForest& compiled = forest.Compiled();
  EXPECT_EQ(obs::metrics::GetCounter("forest.compiles").Value(),
            before + 1);
  EXPECT_EQ(obs::metrics::GetGauge("forest.compiled_bytes").Value(),
            static_cast<double>(compiled.compiled_bytes()));
  EXPECT_GE(obs::metrics::GetGauge("forest.compile_ms").Value(), 0.0);
}

TEST(CompiledKernelsTest, ForceScalarEnvPinsDispatch) {
  DispatchGuard guard;
  ASSERT_EQ(setenv("GEF_FORCE_SCALAR", "1", 1), 0);
  EXPECT_EQ(compiled::ActiveKernel(), compiled::Kernel::kScalar);
  ASSERT_EQ(unsetenv("GEF_FORCE_SCALAR"), 0);
  if (compiled::Avx2Supported()) {
    EXPECT_EQ(compiled::ActiveKernel(), compiled::Kernel::kAvx2);
  }
  // The test override beats the environment.
  ASSERT_EQ(setenv("GEF_FORCE_SCALAR", "1", 1), 0);
  compiled::SetKernelForTest(compiled::Kernel::kAvx2);
  EXPECT_EQ(compiled::ActiveKernel(), compiled::Kernel::kAvx2);
  ASSERT_EQ(unsetenv("GEF_FORCE_SCALAR"), 0);
}

TEST(CompiledKernelsTest, KernelNames) {
  EXPECT_STREQ(compiled::KernelName(compiled::Kernel::kScalar), "scalar");
  EXPECT_STREQ(compiled::KernelName(compiled::Kernel::kAvx2), "avx2");
}

}  // namespace
}  // namespace gef
