// Tests for the five sampling-domain strategies and D* generation,
// including parameterized invariant sweeps across strategies.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "gef/sampling.h"

namespace gef {
namespace {

std::vector<double> SortedThresholds() {
  return {0.1, 0.2, 0.2, 0.3, 0.45, 0.5, 0.5, 0.5, 0.55, 0.7, 0.9};
}

TEST(SamplingDomainTest, AllThresholdsMidpointsAndExtension) {
  std::vector<double> thresholds = {0.0, 0.2, 0.6, 1.0};
  Rng rng(601);
  auto domain = BuildSamplingDomain(
      thresholds, SamplingStrategy::kAllThresholds, 0, 0.05, &rng);
  // Midpoints 0.1, 0.4, 0.8 plus extremes 0 - ε and 1 + ε with ε = 0.05.
  ASSERT_EQ(domain.size(), 5u);
  EXPECT_DOUBLE_EQ(domain[0], -0.05);
  EXPECT_DOUBLE_EQ(domain[1], 0.1);
  EXPECT_DOUBLE_EQ(domain[2], 0.4);
  EXPECT_DOUBLE_EQ(domain[3], 0.8);
  EXPECT_DOUBLE_EQ(domain[4], 1.05);
}

TEST(SamplingDomainTest, AllThresholdsDeduplicatesRepeatedThresholds) {
  std::vector<double> thresholds = {0.5, 0.5, 0.5};
  Rng rng(602);
  auto domain = BuildSamplingDomain(
      thresholds, SamplingStrategy::kAllThresholds, 0, 0.05, &rng);
  // Single distinct threshold: ε falls back to a positive default and
  // the domain brackets the split.
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_LT(domain[0], 0.5);
  EXPECT_GT(domain[1], 0.5);
}

TEST(SamplingDomainTest, KQuantileFollowsDensity) {
  // Thresholds concentrated near 0.5: quantile points must concentrate
  // there too.
  std::vector<double> thresholds;
  for (int i = 0; i < 90; ++i) thresholds.push_back(0.5 + 0.001 * i);
  for (int i = 0; i < 10; ++i) thresholds.push_back(0.1 * i / 10.0);
  std::sort(thresholds.begin(), thresholds.end());
  Rng rng(603);
  auto domain = BuildSamplingDomain(
      thresholds, SamplingStrategy::kKQuantile, 10, 0.05, &rng);
  int near_half = 0;
  for (double v : domain) near_half += (v > 0.4 && v < 0.7) ? 1 : 0;
  EXPECT_GE(near_half, static_cast<int>(domain.size()) - 2);
}

TEST(SamplingDomainTest, EquiWidthIsEvenlySpaced) {
  auto thresholds = SortedThresholds();
  Rng rng(604);
  auto domain = BuildSamplingDomain(
      thresholds, SamplingStrategy::kEquiWidth, 9, 0.05, &rng);
  ASSERT_EQ(domain.size(), 9u);
  double step = domain[1] - domain[0];
  for (size_t i = 2; i < domain.size(); ++i) {
    EXPECT_NEAR(domain[i] - domain[i - 1], step, 1e-12);
  }
  // Spans the ε-extended range.
  double eps = 0.05 * (0.9 - 0.1);
  EXPECT_DOUBLE_EQ(domain.front(), 0.1 - eps);
  EXPECT_DOUBLE_EQ(domain.back(), 0.9 + eps);
}

TEST(SamplingDomainTest, KMeansReducesClustersForFewDistinct) {
  std::vector<double> thresholds = {0.1, 0.1, 0.9, 0.9};
  Rng rng(605);
  auto domain = BuildSamplingDomain(thresholds,
                                    SamplingStrategy::kKMeans, 10, 0.05,
                                    &rng);
  // k = min(|distinct|, K) = 2.
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_DOUBLE_EQ(domain[0], 0.1);
  EXPECT_DOUBLE_EQ(domain[1], 0.9);
}

TEST(SamplingDomainTest, EquiSizeAveragesChunks) {
  std::vector<double> thresholds = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  Rng rng(606);
  auto domain = BuildSamplingDomain(thresholds,
                                    SamplingStrategy::kEquiSize, 3, 0.05,
                                    &rng);
  ASSERT_EQ(domain.size(), 3u);
  EXPECT_DOUBLE_EQ(domain[0], 1.5);
  EXPECT_DOUBLE_EQ(domain[1], 3.5);
  EXPECT_DOUBLE_EQ(domain[2], 5.5);
}

TEST(SamplingDomainTest, EquiSizeFollowsDensity) {
  // 90% of thresholds in [0.49, 0.51]: most chunk means land there.
  std::vector<double> thresholds;
  Rng seed_rng(607);
  for (int i = 0; i < 900; ++i) {
    thresholds.push_back(seed_rng.Uniform(0.49, 0.51));
  }
  for (int i = 0; i < 100; ++i) {
    thresholds.push_back(seed_rng.Uniform(0.0, 1.0));
  }
  std::sort(thresholds.begin(), thresholds.end());
  Rng rng(608);
  auto domain = BuildSamplingDomain(thresholds,
                                    SamplingStrategy::kEquiSize, 20, 0.05,
                                    &rng);
  int near_half = 0;
  for (double v : domain) near_half += (v > 0.45 && v < 0.55) ? 1 : 0;
  EXPECT_GE(near_half, 14);
}

// Invariants common to every strategy, swept over strategy × K.
struct SweepParams {
  SamplingStrategy strategy;
  int k;
};

class SamplingInvariantTest
    : public ::testing::TestWithParam<SweepParams> {};

TEST_P(SamplingInvariantTest, DomainSortedDistinctBoundedSized) {
  const auto& p = GetParam();
  Rng data_rng(609);
  std::vector<double> thresholds;
  for (int i = 0; i < 400; ++i) {
    thresholds.push_back(std::round(data_rng.Normal(5.0, 2.0) * 50.0) /
                         50.0);
  }
  std::sort(thresholds.begin(), thresholds.end());
  Rng rng(610);
  auto domain =
      BuildSamplingDomain(thresholds, p.strategy, p.k, 0.05, &rng);

  EXPECT_FALSE(domain.empty());
  EXPECT_TRUE(std::is_sorted(domain.begin(), domain.end()));
  std::set<double> distinct(domain.begin(), domain.end());
  EXPECT_EQ(distinct.size(), domain.size());

  // Bounded by the ε-extended threshold range.
  double lo = thresholds.front(), hi = thresholds.back();
  double eps = 0.05 * (hi - lo) + 1e-9;
  EXPECT_GE(domain.front(), lo - eps - 1.0);
  EXPECT_LE(domain.back(), hi + eps + 1.0);

  if (p.strategy != SamplingStrategy::kAllThresholds) {
    EXPECT_LE(domain.size(), static_cast<size_t>(p.k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndK, SamplingInvariantTest,
    ::testing::Values(
        SweepParams{SamplingStrategy::kAllThresholds, 0},
        SweepParams{SamplingStrategy::kKQuantile, 5},
        SweepParams{SamplingStrategy::kKQuantile, 50},
        SweepParams{SamplingStrategy::kEquiWidth, 5},
        SweepParams{SamplingStrategy::kEquiWidth, 50},
        SweepParams{SamplingStrategy::kKMeans, 5},
        SweepParams{SamplingStrategy::kKMeans, 50},
        SweepParams{SamplingStrategy::kEquiSize, 5},
        SweepParams{SamplingStrategy::kEquiSize, 50}));

TEST(SamplingDomainTest, SketchKQuantileMatchesExactOnLargeLists) {
  // The streaming path must agree with the in-memory K-Quantile domain
  // within the sketch's rank error.
  Rng rng(615);
  std::vector<double> thresholds;
  QuantileSketch sketch(0.005);
  for (int i = 0; i < 20000; ++i) {
    double v = rng.Normal(0.5, 0.15);
    thresholds.push_back(v);
    sketch.Add(v);
  }
  std::sort(thresholds.begin(), thresholds.end());
  Rng domain_rng(616);
  auto exact = BuildSamplingDomain(
      thresholds, SamplingStrategy::kKQuantile, 12, 0.05, &domain_rng);
  auto streamed = BuildKQuantileDomainFromSketch(sketch, 12);
  ASSERT_EQ(streamed.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(streamed[i], exact[i], 0.02) << "point " << i;
  }
}

TEST(SamplingDomainTest, SketchDomainDegenerateCaseBrackets) {
  QuantileSketch sketch(0.01);
  for (int i = 0; i < 100; ++i) sketch.Add(0.5);
  auto domain = BuildKQuantileDomainFromSketch(sketch, 10);
  ASSERT_EQ(domain.size(), 2u);
  EXPECT_LT(domain[0], 0.5);
  EXPECT_GT(domain[1], 0.5);
}

TEST(SamplingStrategyTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (auto s : AllSamplingStrategies()) {
    names.insert(SamplingStrategyName(s));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(DstarTest, GeneratedDatasetDrawsFromDomains) {
  Rng rng(611);
  Dataset data = MakeGPrimeDataset(1000, &rng);
  GbdtConfig config;
  config.num_trees = 20;
  config.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, config).forest;
  ThresholdIndex index(forest);
  auto domains = BuildAllDomains(forest, index,
                                 SamplingStrategy::kKQuantile, 16, 0.05,
                                 &rng);
  Dataset dstar = GenerateSyntheticDataset(forest, domains, 500, &rng);
  EXPECT_EQ(dstar.num_rows(), 500u);
  EXPECT_EQ(dstar.num_features(), forest.num_features());
  for (size_t f = 0; f < dstar.num_features(); ++f) {
    std::set<double> allowed(domains[f].begin(), domains[f].end());
    for (double v : dstar.Column(f)) {
      EXPECT_EQ(allowed.count(v), 1u) << "feature " << f;
    }
  }
}

TEST(DstarTest, LabelsAreForestRawPredictions) {
  Rng rng(612);
  Dataset data = MakeGPrimeDataset(800, &rng);
  GbdtConfig config;
  config.num_trees = 15;
  config.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, config).forest;
  ThresholdIndex index(forest);
  auto domains = BuildAllDomains(forest, index,
                                 SamplingStrategy::kEquiSize, 8, 0.05,
                                 &rng);
  Dataset dstar = GenerateSyntheticDataset(forest, domains, 100, &rng);
  for (size_t i = 0; i < dstar.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(dstar.target(i),
                     forest.PredictRaw(dstar.GetRow(i)));
  }
}

TEST(DstarTest, ClassificationLabelsAreProbabilities) {
  Rng rng(613);
  Dataset data(std::vector<std::string>{"x1", "x2"});
  for (int i = 0; i < 800; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    data.AppendRow({a, b}, a + b > 1.0 ? 1.0 : 0.0);
  }
  GbdtConfig config;
  config.objective = Objective::kBinaryClassification;
  config.num_trees = 20;
  config.num_leaves = 4;
  Forest forest = TrainGbdt(data, nullptr, config).forest;
  ThresholdIndex index(forest);
  auto domains = BuildAllDomains(forest, index,
                                 SamplingStrategy::kEquiWidth, 10, 0.05,
                                 &rng);
  Dataset dstar = GenerateSyntheticDataset(forest, domains, 200, &rng);
  for (double y : dstar.targets()) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(DstarTest, UnusedFeatureGetsSingletonDomain) {
  Tree t = Tree::Stump(0.0, 10);
  t.SplitLeaf(0, 0, 0.5, 1.0, 0.0, 1.0, 5, 5);
  std::vector<Tree> trees;
  trees.push_back(std::move(t));
  Forest forest(std::move(trees), 0.0, Objective::kRegression,
                Aggregation::kSum, 3, {});
  ThresholdIndex index(forest);
  Rng rng(614);
  auto domains = BuildAllDomains(forest, index,
                                 SamplingStrategy::kKQuantile, 8, 0.05,
                                 &rng);
  EXPECT_EQ(domains[1].size(), 1u);
  EXPECT_EQ(domains[2].size(), 1u);
}

}  // namespace
}  // namespace gef
