// Tests for linalg: Matrix ops, Cholesky (incl. property tests over
// random SPD matrices), penalized least squares and ridge.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "stats/rng.h"

namespace gef {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng->Normal();
  }
  return m;
}

// A ← AᵀA + n·I is SPD.
Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a = RandomMatrix(n, n, rng);
  Matrix spd = GramWeighted(a, {});
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(1, 2), 0.0);
  Matrix d = Matrix::Diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_NEAR(t.Transpose().FrobeniusDistance(m), 0.0, 1e-15);
}

TEST(MatrixTest, MatMulAgainstHandComputedResult) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatVecAndMatTVec) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Vector x = {1, 0, -1};
  Vector y = MatVec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);

  Vector z = {1, 1};
  Vector w = MatTVec(a, z);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[1], 7.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

TEST(MatrixTest, GramWeightedMatchesExplicitProduct) {
  Rng rng(1);
  Matrix x = RandomMatrix(20, 4, &rng);
  Vector w(20);
  for (double& v : w) v = rng.Uniform(0.1, 2.0);
  Matrix gram = GramWeighted(x, w);
  // Explicit Xᵀ diag(w) X.
  Matrix xt = x.Transpose();
  Matrix wx = x;
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) wx(i, j) *= w[i];
  }
  Matrix expected = MatMul(xt, wx);
  EXPECT_NEAR(gram.FrobeniusDistance(expected), 0.0, 1e-10);
}

TEST(MatrixTest, GramUnweightedUsesUnitWeights) {
  Rng rng(2);
  Matrix x = RandomMatrix(10, 3, &rng);
  Matrix gram = GramWeighted(x, {});
  Matrix expected = MatMul(x.Transpose(), x);
  EXPECT_NEAR(gram.FrobeniusDistance(expected), 0.0, 1e-10);
}

TEST(MatrixTest, KroneckerShapeAndValues) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{0, 5}, {6, 7}});
  Matrix k = Kronecker(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);    // a00*b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);    // a00*b10
  EXPECT_DOUBLE_EQ(k(3, 3), 28.0);   // a11*b11
  EXPECT_DOUBLE_EQ(k(2, 1), 15.0);   // a10*b01
}

TEST(MatrixTest, VectorHelpers) {
  Vector a = {1, 2, 3};
  Vector b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm(Vector{3, 4}), 5.0);
  Axpy(2.0, b, &a);
  EXPECT_DOUBLE_EQ(a[0], 9.0);
  EXPECT_DOUBLE_EQ(a[2], 15.0);
}

TEST(CholeskyTest, FactorizesKnownMatrix) {
  // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->lower()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol->lower()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol->lower()(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(chol->jitter(), 0.0);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.has_value());
  Vector x = chol->Solve({10, 8});  // solution {7/4, 3/2}
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskyTest, LogDetMatchesKnownDeterminant) {
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});  // det = 8
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_NEAR(chol->LogDet(), std::log(8.0), 1e-12);
}

TEST(CholeskyTest, SingularMatrixGetsJitterOrFails) {
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});  // rank 1
  auto chol = Cholesky::Factorize(a);
  // Jitter should rescue it.
  ASSERT_TRUE(chol.has_value());
  EXPECT_GT(chol->jitter(), 0.0);
}

TEST(CholeskyTest, IndefiniteMatrixFailsEvenWithJitter) {
  Matrix a = Matrix::FromRows({{1.0, 0.0}, {0.0, -100.0}});
  auto chol = Cholesky::Factorize(a, /*max_jitter_steps=*/2);
  EXPECT_FALSE(chol.has_value());
}

class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, ReconstructsAndSolvesRandomSpd) {
  Rng rng(GetParam());
  size_t n = 2 + rng.UniformInt(12);
  Matrix a = RandomSpd(n, &rng);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.has_value());

  // L Lᵀ reconstructs A.
  Matrix reconstructed = MatMul(chol->lower(), chol->lower().Transpose());
  EXPECT_LT(reconstructed.FrobeniusDistance(a), 1e-8 * (1.0 + n));

  // Solve then multiply back.
  Vector b(n);
  for (double& v : b) v = rng.Normal();
  Vector x = chol->Solve(b);
  Vector back = MatVec(a, x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);

  // Inverse is a two-sided inverse.
  Matrix inv = chol->Inverse();
  Matrix prod = MatMul(a, inv);
  EXPECT_LT(prod.FrobeniusDistance(Matrix::Identity(n)), 1e-8 * (1.0 + n));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CholeskyPropertyTest,
                         ::testing::Range(1, 21));

TEST(SolveTest, UnpenalizedLeastSquaresMatchesExactFit) {
  // y = 2 + 3x fitted exactly by [1 x] design.
  Matrix x = Matrix::FromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  Vector y = {2, 5, 8, 11};
  auto sol = SolvePenalizedLeastSquares(x, y, {}, Matrix());
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->beta[0], 2.0, 1e-10);
  EXPECT_NEAR(sol->beta[1], 3.0, 1e-10);
  EXPECT_NEAR(sol->rss, 0.0, 1e-18);
  EXPECT_NEAR(sol->edof, 2.0, 1e-10);
}

TEST(SolveTest, PenaltyShrinksCoefficients) {
  Rng rng(3);
  Matrix x = RandomMatrix(50, 4, &rng);
  Vector y(50);
  for (double& v : y) v = rng.Normal();
  auto free_fit = SolvePenalizedLeastSquares(x, y, {}, Matrix());
  Matrix ridge = Matrix::Identity(4);
  ridge.Scale(1000.0);
  auto shrunk = SolvePenalizedLeastSquares(x, y, {}, ridge);
  ASSERT_TRUE(free_fit.has_value() && shrunk.has_value());
  EXPECT_LT(Norm(shrunk->beta), Norm(free_fit->beta));
  EXPECT_LT(shrunk->edof, free_fit->edof);
  EXPECT_GE(shrunk->rss, free_fit->rss - 1e-9);
}

TEST(SolveTest, WeightsChangeTheSolution) {
  // Two incompatible observations of a constant; weights decide.
  Matrix x = Matrix::FromRows({{1.0}, {1.0}});
  Vector y = {0.0, 10.0};
  auto heavy_first =
      SolvePenalizedLeastSquares(x, y, {100.0, 1.0}, Matrix());
  ASSERT_TRUE(heavy_first.has_value());
  EXPECT_LT(heavy_first->beta[0], 1.0);
  auto heavy_second =
      SolvePenalizedLeastSquares(x, y, {1.0, 100.0}, Matrix());
  ASSERT_TRUE(heavy_second.has_value());
  EXPECT_GT(heavy_second->beta[0], 9.0);
}

TEST(SolveTest, RidgeRecoversLinearCoefficients) {
  Rng rng(4);
  Matrix x = RandomMatrix(200, 3, &rng);
  Vector beta_true = {1.5, -2.0, 0.5};
  Vector y(200);
  for (size_t i = 0; i < 200; ++i) {
    y[i] = Dot({x(i, 0), x(i, 1), x(i, 2)}, beta_true) +
           0.01 * rng.Normal();
  }
  auto beta = SolveRidge(x, y, {}, 1e-6);
  ASSERT_TRUE(beta.has_value());
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR((*beta)[j], beta_true[j], 0.02);
  }
}

}  // namespace
}  // namespace gef
