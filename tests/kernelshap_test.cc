// Tests for Kernel SHAP: exactness on linear models, local accuracy,
// agreement with exact TreeSHAP on independent backgrounds, and the
// model-agnostic path (explaining the GEF GAM itself).

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "explain/kernelshap.h"
#include "forest/gbdt_trainer.h"
#include "gef/explainer.h"

namespace gef {
namespace {

Dataset UniformBackground(size_t rows, size_t features, Rng* rng) {
  Dataset d(features);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> x(features);
    for (double& v : x) v = rng->Uniform();
    d.AppendRow(x);
  }
  return d;
}

TEST(KernelShapTest, ExactOnLinearModel) {
  // For f(x) = Σ a_f x_f with independent background, the Shapley value
  // of feature f is a_f (x_f − E[x_f]) exactly.
  Rng rng(201);
  Dataset background = UniformBackground(400, 3, &rng);
  std::vector<double> a = {2.0, -1.0, 0.5};
  auto model = [&a](const std::vector<double>& x) {
    return a[0] * x[0] + a[1] * x[1] + a[2] * x[2];
  };
  KernelShapConfig config;
  config.background_rows = 0;  // use all rows
  KernelShapExplainer explainer(model, background, config);
  std::vector<double> instance = {0.9, 0.2, 0.6};
  ShapExplanation e = explainer.Explain(instance);
  for (int f = 0; f < 3; ++f) {
    double mean_f = 0.0;
    for (double v : background.Column(f)) mean_f += v;
    mean_f /= background.num_rows();
    EXPECT_NEAR(e.values[f], a[f] * (instance[f] - mean_f), 1e-8);
  }
}

TEST(KernelShapTest, LocalAccuracyHoldsByConstruction) {
  Rng rng(202);
  Dataset data = MakeGPrimeDataset(1200, &rng);
  GbdtConfig fc;
  fc.num_trees = 30;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  KernelShapConfig config;
  config.background_rows = 60;
  KernelShapExplainer explainer(forest, data, config);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(5);
    for (double& v : x) v = rng.Uniform();
    ShapExplanation e = explainer.Explain(x);
    double total = e.base_value;
    for (double phi : e.values) total += phi;
    EXPECT_NEAR(total, forest.PredictRaw(x), 1e-8);
  }
}

TEST(KernelShapTest, AgreesWithTreeShapOnIndependentBackground) {
  Rng rng(203);
  Dataset data = MakeGPrimeDataset(2000, &rng);
  GbdtConfig fc;
  fc.num_trees = 60;
  fc.num_leaves = 16;
  fc.learning_rate = 0.15;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;

  KernelShapConfig config;
  config.background_rows = 150;
  KernelShapExplainer kernel(forest, data, config);
  TreeShapExplainer tree(forest);

  std::vector<double> x = {0.3, 0.7, 0.45, 0.2, 0.8};
  ShapExplanation ke = kernel.Explain(x);
  ShapExplanation te = tree.Explain(x);
  // g' is additive and features are independent: the two algorithms
  // estimate the same quantity up to background sampling noise.
  for (int f = 0; f < 5; ++f) {
    EXPECT_NEAR(ke.values[f], te.values[f], 0.12)
        << "feature " << f;
  }
}

TEST(KernelShapTest, SingleFeatureGetsAllCredit) {
  Rng rng(204);
  Dataset background = UniformBackground(100, 1, &rng);
  auto model = [](const std::vector<double>& x) { return 3.0 * x[0]; };
  KernelShapConfig config;
  KernelShapExplainer explainer(model, background, config);
  ShapExplanation e = explainer.Explain({0.8});
  EXPECT_NEAR(e.base_value + e.values[0], 2.4, 1e-9);
}

TEST(KernelShapTest, SampledModeStillLocallyAccurate) {
  // Force the sampling path by lowering the enumeration limit.
  Rng rng(205);
  Dataset data = MakeGPrimeDataset(800, &rng);
  GbdtConfig fc;
  fc.num_trees = 20;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  KernelShapConfig config;
  config.exact_enumeration_limit = 2;  // forces sampling for 5 features
  config.num_coalitions = 500;
  config.background_rows = 50;
  KernelShapExplainer explainer(forest, data, config);
  std::vector<double> x = {0.5, 0.5, 0.5, 0.5, 0.5};
  ShapExplanation e = explainer.Explain(x);
  double total = e.base_value;
  for (double phi : e.values) total += phi;
  EXPECT_NEAR(total, forest.PredictRaw(x), 1e-8);
}

TEST(KernelShapTest, ExplainsTheGefSurrogateItself) {
  // Model-agnostic: audit Γ with SHAP, closing the loop — the GAM's own
  // SHAP values should match its additive term contributions.
  Rng rng(206);
  Dataset data = MakeGPrimeDataset(2000, &rng);
  GbdtConfig fc;
  fc.num_trees = 50;
  fc.num_leaves = 8;
  Forest forest = TrainGbdt(data, nullptr, fc).forest;
  GefConfig gef_config;
  gef_config.num_univariate = 5;
  gef_config.num_samples = 3000;
  gef_config.k = 24;
  auto explanation = ExplainForest(forest, gef_config);
  ASSERT_NE(explanation, nullptr);
  const Gam& gam = explanation->gam();

  KernelShapConfig config;
  config.background_rows = 200;
  KernelShapExplainer explainer(
      [&gam](const std::vector<double>& row) {
        return gam.PredictRaw(row);
      },
      data, config);
  std::vector<double> x = {0.2, 0.8, 0.55, 0.4, 0.7};
  ShapExplanation e = explainer.Explain(x);
  // For an additive model with independent background, SHAP of feature
  // f equals s_f(x_f) − E[s_f] — correlate against the GAM terms.
  for (size_t i = 0; i < explanation->selected_features.size(); ++i) {
    int feature = explanation->selected_features[i];
    int term = explanation->univariate_term_index[i];
    double contribution = gam.TermContribution(term, x);
    // The term is mean-zero over D*, the background is the original
    // distribution — allow a loose tolerance for that mismatch.
    EXPECT_NEAR(e.values[feature], contribution, 0.25)
        << "feature " << feature;
  }
}

}  // namespace
}  // namespace gef
