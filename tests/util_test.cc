// Tests for util: Status/StatusOr, string helpers, timer.

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace gef {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::IoError("cannot open foo");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "cannot open foo");
  EXPECT_EQ(status.ToString(), "IO_ERROR: cannot open foo");
}

TEST(StatusTest, AllFactoryFunctionsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(SplitTest, BasicSplit) {
  auto fields = Split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto fields = Split("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitTest, NoDelimiterYieldsSingleField) {
  auto fields = Split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nvalue\r "), "value");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.25), "1.25");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.001), "0.001");
}

TEST(FormatDoubleTest, RespectsSignificantDigits) {
  EXPECT_EQ(FormatDouble(3.14159265, 3), "3.14");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("forest model", "forest"));
  EXPECT_FALSE(StartsWith("forest", "forest model"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble("  7 ", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, RejectsMalformedInput) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(ParseIntTest, ParsesValidIntegers) {
  int v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
}

TEST(ParseIntTest, RejectsMalformedInput) {
  int v = 0;
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("1.5", &v));
  EXPECT_FALSE(ParseInt("x", &v));
}

TEST(TimerTest, MeasuresNonNegativeElapsedTime) {
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sink, 0.0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

TEST(TimerTest, ResetRestartsClock) {
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sink, 0.0);
  double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(GEF_CHECK(1 == 2), "GEF_CHECK failed");
}

TEST(CheckDeathTest, FailedCheckMsgIncludesMessage) {
  EXPECT_DEATH(GEF_CHECK_MSG(false, "context " << 42), "context 42");
}

TEST(CheckDeathTest, ComparisonMacros) {
  EXPECT_DEATH(GEF_CHECK_EQ(1, 2), "expected equality");
  EXPECT_DEATH(GEF_CHECK_LT(2, 1), "expected a < b");
}

TEST(CheckTest, PassingChecksAreSilent) {
  GEF_CHECK(true);
  GEF_CHECK_EQ(3, 3);
  GEF_CHECK_LE(1, 1);
  GEF_CHECK_GT(2, 1);
}

}  // namespace
}  // namespace gef
