// Tests for the versioned binary model store (src/store, DESIGN.md
// §3.17): text -> binary -> text bit-identity for every forest flavour,
// ContentHash stability across the mmap boundary, predict/explain
// bit-parity between a text-parsed forest and the zero-copy store load,
// surrogate/summary payload round-trips, the chunked checksum
// definition, and the registry's mmap remap path.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "forest/lightgbm_import.h"
#include "forest/random_forest_trainer.h"
#include "forest/serialization.h"
#include "gef/explainer.h"
#include "gef/explanation_io.h"
#include "serve/model_registry.h"
#include "store/checksum.h"
#include "store/store_builder.h"
#include "store/store_reader.h"
#include "util/hash.h"
#include "util/parallel.h"

namespace gef {
namespace {

// The miniature LightGBM v3 model from lightgbm_import_test.cc: two
// trees, one of them a stump, shrinkage applied by the importer.
constexpr char kLightGbmModel[] = R"(tree
version=v3
num_class=1
num_tree_per_iteration=1
label_index=0
max_feature_idx=2
objective=regression
feature_names=age income extra
feature_infos=[0:1] [0:1] [0:1]

Tree=0
num_leaves=3
num_cat=0
split_feature=0 1
split_gain=10 4
threshold=0.5 0.3
decision_type=2 2
left_child=-1 -2
right_child=1 -3
leaf_value=1 2 3
leaf_weight=1 1 1
leaf_count=50 20 30
internal_value=0 0
internal_weight=0 0
internal_count=100 50
is_linear=0
shrinkage=1

Tree=1
num_leaves=1
num_cat=0
leaf_value=0.25
leaf_count=100
is_linear=0
shrinkage=1

end of trees

feature_importances:
age=1
income=1
)";

std::string TmpPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Forest TrainSmallGbdt(Objective objective = Objective::kRegression) {
  Rng rng(111);
  Dataset data = MakeGPrimeDataset(400, &rng);
  if (objective == Objective::kBinaryClassification) {
    std::vector<double> labels(data.num_rows());
    for (size_t i = 0; i < data.num_rows(); ++i) {
      labels[i] = data.target(i) > 2.5 ? 1.0 : 0.0;
    }
    data.set_targets(labels);
  }
  GbdtConfig config;
  config.objective = objective;
  config.num_trees = 8;
  config.num_leaves = 6;
  config.min_samples_leaf = 5;
  return TrainGbdt(data, nullptr, config).forest;
}

/// Packs `forest` into a store at a fresh temp path and reopens it.
/// The caller removes the file.
StatusOr<store::StoreReader> PackAndOpen(const Forest& forest,
                                         const std::string& path) {
  store::StoreBuilder builder;
  if (Status s = builder.AddForest("m", forest); !s.ok()) return s;
  if (Status s = builder.WriteTo(path); !s.ok()) return s;
  return store::StoreReader::Open(path);
}

void ExpectBitIdenticalRoundTrip(const Forest& forest,
                                 const std::string& tag) {
  const std::string path = TmpPath("gef_store_" + tag + ".gefs");
  auto reader = PackAndOpen(forest, path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto restored = reader->LoadForest("m");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Text -> binary -> text is byte-identical, which also pins the
  // content hash across the boundary.
  EXPECT_EQ(ForestToString(forest), ForestToString(*restored));
  EXPECT_EQ(forest.ContentHash(), restored->ContentHash());
  auto stored_hash = reader->ForestHash("m");
  ASSERT_TRUE(stored_hash.ok());
  EXPECT_EQ(stored_hash.value(), forest.ContentHash());

  // Predict bit-parity: the restored forest serves off the mmap'd
  // compiled arrays (zero-copy), the original compiles its own.
  Rng rng(7);
  std::vector<double> row(forest.num_features());
  for (size_t i = 0; i < 64; ++i) {
    for (double& x : row) x = rng.Uniform(-2.0, 2.0);
    const double a = forest.Predict(row);
    const double b = restored->Predict(row);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0)
        << tag << " diverged at row " << i << ": " << a << " vs " << b;
  }
  std::remove(path.c_str());
}

TEST(StoreTest, GbdtRoundTripBitIdentical) {
  ExpectBitIdenticalRoundTrip(TrainSmallGbdt(), "gbdt");
}

TEST(StoreTest, BinaryGbdtRoundTripBitIdentical) {
  ExpectBitIdenticalRoundTrip(
      TrainSmallGbdt(Objective::kBinaryClassification), "binary");
}

TEST(StoreTest, RandomForestRoundTripBitIdentical) {
  Rng rng(101);
  Dataset data = MakeGPrimeDataset(400, &rng);
  RandomForestConfig config;
  config.num_trees = 6;
  config.num_leaves = 16;
  config.min_samples_leaf = 3;
  ExpectBitIdenticalRoundTrip(TrainRandomForest(data, config), "rf");
}

TEST(StoreTest, LightGbmRoundTripBitIdentical) {
  auto forest = ParseLightGbmModel(kLightGbmModel);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  ExpectBitIdenticalRoundTrip(forest.value(), "lgbm");
}

TEST(StoreTest, ExplainBitParityParsedVsZeroCopy) {
  Forest original = TrainSmallGbdt();
  const std::string path = TmpPath("gef_store_explain.gefs");
  auto reader = PackAndOpen(original, path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto restored = reader->LoadForest("m");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // The pipeline is deterministic given (forest bytes, config): the
  // surrogates fitted against the parsed and the zero-copy forests
  // must serialize identically, including fidelity statistics.
  GefConfig config;
  config.num_univariate = 3;
  config.num_bivariate = 1;
  config.num_samples = 1200;
  config.k = 12;
  config.seed = 9;
  auto a = ExplainForest(original, config);
  auto b = ExplainForest(*restored, config);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(ExplanationToString(*a), ExplanationToString(*b));
  std::remove(path.c_str());
}

TEST(StoreTest, SurrogateAndSummaryRoundTripBytes) {
  Forest forest = TrainSmallGbdt();
  GefConfig config;
  config.num_univariate = 2;
  config.num_samples = 800;
  config.k = 8;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);
  const std::string surrogate_text = ExplanationToString(*explanation);
  const std::string summary_text = "rows=400\ncols=3\n";

  store::StoreBuilder builder;
  ASSERT_TRUE(builder.AddForest("m", forest).ok());
  ASSERT_TRUE(builder.AddSurrogate("m", surrogate_text).ok());
  ASSERT_TRUE(builder.AddDatasetSummary("train", summary_text).ok());
  const std::string path = TmpPath("gef_store_surrogate.gefs");
  ASSERT_TRUE(builder.WriteTo(path).ok());

  auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto surrogate = reader->SurrogateText("m");
  ASSERT_TRUE(surrogate.ok());
  EXPECT_EQ(surrogate.value(), surrogate_text);
  auto parsed = ExplanationFromString(surrogate.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto summary = reader->DatasetSummaryText("train");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary.value(), summary_text);
  EXPECT_FALSE(reader->SurrogateText("absent").ok());
  std::remove(path.c_str());
}

TEST(StoreTest, BuilderRejectsBadSections) {
  Forest forest = TrainSmallGbdt();
  store::StoreBuilder builder;
  // Surrogates must follow their forest (they inherit its hash).
  EXPECT_FALSE(builder.AddSurrogate("m", "text").ok());
  ASSERT_TRUE(builder.AddForest("m", forest).ok());
  EXPECT_FALSE(builder.AddForest("m", forest).ok());  // duplicate
  EXPECT_FALSE(builder.AddDatasetSummary("empty", "").ok());
  EXPECT_FALSE(builder.AddDatasetSummary("", "text").ok());
  EXPECT_FALSE(
      builder.AddDatasetSummary("a-name-way-over-fifteen-bytes", "x").ok());
  EXPECT_EQ(builder.num_sections(), 3u);  // meta + nodes + compiled
}

TEST(StoreTest, SectionChecksumMatchesDefinitionAndThreadCount) {
  // Payload sizes straddling the chunk grid: empty-adjacent, one byte,
  // exactly one chunk, one byte over, and several chunks (exercises the
  // 4-way interleaved path against the plain per-chunk definition).
  for (size_t size : {size_t{1}, store::kChecksumChunk,
                      store::kChecksumChunk + 1,
                      5 * store::kChecksumChunk + 17}) {
    std::string payload(size, '\0');
    for (size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<char>((i * 131) ^ (i >> 7));
    }
    // Reference: FNV-1a folded over per-chunk FNV digests, in order.
    uint64_t expected = HashFnv1a64(nullptr, 0);
    for (size_t begin = 0; begin < size; begin += store::kChecksumChunk) {
      const size_t len = std::min(store::kChecksumChunk, size - begin);
      expected =
          HashCombine(expected, HashFnv1a64(payload.data() + begin, len));
    }
    EXPECT_EQ(store::SectionChecksum(payload.data(), size), expected);
    SetNumThreads(1);
    EXPECT_EQ(store::SectionChecksum(payload.data(), size), expected);
    SetNumThreads(0);  // restore the default
  }
}

TEST(StoreTest, RegistryLoadStoreAndRemap) {
  Forest forest = TrainSmallGbdt();
  GefConfig config;
  config.num_univariate = 2;
  config.num_samples = 800;
  config.k = 8;
  auto explanation = ExplainForest(forest, config);
  ASSERT_NE(explanation, nullptr);

  store::StoreBuilder builder;
  ASSERT_TRUE(builder.AddForest("m", forest).ok());
  ASSERT_TRUE(
      builder.AddSurrogate("m", ExplanationToString(*explanation)).ok());
  const std::string path = TmpPath("gef_store_registry.gefs");
  ASSERT_TRUE(builder.WriteTo(path).ok());

  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.LoadStore(path).ok());
  auto first = registry.Get("m");
  ASSERT_NE(first, nullptr);
  // The registry trusts the pack-time hash (no re-serialization); it
  // must still equal the canonical ContentHash.
  EXPECT_EQ(first->hash, forest.ContentHash());
  ASSERT_NE(first->preloaded_explanation, nullptr);
  EXPECT_EQ(ExplanationToString(*first->preloaded_explanation),
            ExplanationToString(*explanation));

  // Hot-swap remap: loading the same store again replaces the entry
  // with a fresh mapping; same content hash means every downstream
  // cache (surrogate single-flight) keeps hitting.
  ASSERT_TRUE(registry.LoadStore(path).ok());
  auto second = registry.Get("m");
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(second->hash, first->hash);
  // The original snapshot stays valid and servable (in-flight requests
  // finish on the model they started with).
  Rng rng(7);
  Dataset probe = MakeGPrimeDataset(8, &rng);
  std::vector<double> row;
  probe.GetRowInto(0, &row);
  const double a = first->forest.Predict(row);
  const double b = second->forest.Predict(row);
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(a)), 0);
  std::remove(path.c_str());
}

TEST(StoreTest, MultiForestStoreKeepsNamesApart) {
  Forest regression = TrainSmallGbdt();
  Forest binary = TrainSmallGbdt(Objective::kBinaryClassification);
  store::StoreBuilder builder;
  ASSERT_TRUE(builder.AddForest("reg", regression).ok());
  ASSERT_TRUE(builder.AddForest("bin", binary).ok());
  const std::string path = TmpPath("gef_store_multi.gefs");
  ASSERT_TRUE(builder.WriteTo(path).ok());

  auto reader = store::StoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->ForestNames(),
            (std::vector<std::string>{"reg", "bin"}));
  auto reg = reader->LoadForest("reg");
  auto bin = reader->LoadForest("bin");
  ASSERT_TRUE(reg.ok());
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(reg->objective(), Objective::kRegression);
  EXPECT_EQ(bin->objective(), Objective::kBinaryClassification);
  EXPECT_FALSE(reader->LoadForest("absent").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gef
