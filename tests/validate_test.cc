// Unit tests for the model-artifact validators (util/validate.h): the
// structural invariants that guard every deserialization boundary and,
// under ValidateAfterTraining(), freshly trained models.

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "forest/forest.h"
#include "forest/tree.h"
#include "gam/gam.h"
#include "gam/terms.h"
#include "stats/rng.h"
#include "util/validate.h"

namespace gef {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Root split on feature 0 with two leaves: nodes {0: internal, 1, 2}.
Tree MakeValidTree() {
  Tree tree;
  TreeNode root;
  root.feature = 0;
  root.threshold = 0.5;
  root.gain = 1.0;
  root.left = 1;
  root.right = 2;
  tree.AddNode(root);
  TreeNode leaf;
  leaf.value = -1.0;
  tree.AddNode(leaf);
  leaf.value = 1.0;
  tree.AddNode(leaf);
  return tree;
}

Forest MakeForest(std::vector<Tree> trees, size_t num_features = 2) {
  return Forest(std::move(trees), /*init_score=*/0.0,
                Objective::kRegression, Aggregation::kSum, num_features,
                /*feature_names=*/{});
}

void ExpectInvalid(const Status& status, const std::string& fragment) {
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(fragment), std::string::npos)
      << "message was: " << status.message();
}

TEST(ValidateTreeTest, AcceptsWellFormedTreeAndStump) {
  EXPECT_TRUE(ValidateTree(MakeValidTree(), 2).ok());
  EXPECT_TRUE(ValidateTree(Tree::Stump(0.25), 2).ok());
}

TEST(ValidateTreeTest, RejectsChildIndexOutOfRange) {
  Tree tree = MakeValidTree();
  tree.mutable_node(0).right = 7;
  ExpectInvalid(ValidateTree(tree, 2), "out of range");
}

TEST(ValidateTreeTest, RejectsSplitFeatureOutOfRange) {
  Tree tree = MakeValidTree();
  tree.mutable_node(0).feature = 5;
  ExpectInvalid(ValidateTree(tree, 2), "split feature 5 out of range");
}

TEST(ValidateTreeTest, RejectsNonFiniteThresholdGainAndLeafValue) {
  Tree tree = MakeValidTree();
  tree.mutable_node(0).threshold = kNan;
  ExpectInvalid(ValidateTree(tree, 2), "threshold is not finite");

  tree = MakeValidTree();
  tree.mutable_node(0).gain = kInf;
  ExpectInvalid(ValidateTree(tree, 2), "gain is not finite");

  tree = MakeValidTree();
  tree.mutable_node(2).value = kNan;
  ExpectInvalid(ValidateTree(tree, 2), "leaf value is not finite");
}

TEST(ValidateTreeTest, RejectsLeafWithChildren) {
  Tree tree = MakeValidTree();
  tree.mutable_node(1).left = 2;
  ExpectInvalid(ValidateTree(tree, 2), "leaf has children");
}

TEST(ValidateTreeTest, RejectsCycleThroughRoot) {
  // 0 -> (1, 2), 1 -> (0, 2): the root acquires a parent and node 2 two.
  Tree tree = MakeValidTree();
  TreeNode& n1 = tree.mutable_node(1);
  n1.feature = 1;
  n1.left = 0;
  n1.right = 2;
  ExpectInvalid(ValidateTree(tree, 2), "root node 0 is a child");
}

TEST(ValidateTreeTest, RejectsDoublyReachableNode) {
  // 0 -> (1, 2), 1 -> (2, 3): node 2 has two parents (a lattice, not a
  // tree). IsWellFormed() accepts this shape — the validator must not.
  Tree tree;
  TreeNode root;
  root.feature = 0;
  root.threshold = 0.5;
  root.left = 1;
  root.right = 2;
  tree.AddNode(root);
  TreeNode inner;
  inner.feature = 1;
  inner.threshold = 0.1;
  inner.left = 2;
  inner.right = 3;
  tree.AddNode(inner);
  tree.AddNode(TreeNode{});  // leaf 2
  tree.AddNode(TreeNode{});  // leaf 3
  ExpectInvalid(ValidateTree(tree, 2), "has 2 parents");
}

TEST(ValidateTreeTest, RejectsUnreachableNode) {
  Tree tree = MakeValidTree();
  tree.AddNode(TreeNode{});  // orphan leaf 3
  ExpectInvalid(ValidateTree(tree, 2), "expected 1");
}

TEST(ValidateForestTest, AcceptsValidForest) {
  EXPECT_TRUE(
      ValidateForest(MakeForest({MakeValidTree(), MakeValidTree()})).ok());
}

TEST(ValidateForestTest, ReportsOffendingTreeIndex) {
  Tree bad = MakeValidTree();
  bad.mutable_node(0).left = -3;
  Status status = ValidateForest(MakeForest({MakeValidTree(), bad}));
  ExpectInvalid(status, "tree 1:");
  ExpectInvalid(status, "out of range");
}

TEST(ValidateForestTest, RejectsNonFiniteInitScore) {
  Forest forest(std::vector<Tree>{MakeValidTree()}, /*init_score=*/kNan,
                Objective::kRegression, Aggregation::kSum, 2, {});
  ExpectInvalid(ValidateForest(forest), "init_score");
}

TEST(ValidateDatasetTest, AcceptsFiniteData) {
  Dataset data(2);
  data.AppendRow({0.1, 0.2}, 1.0);
  data.AppendRow({0.3, 0.4}, 0.0);
  EXPECT_TRUE(ValidateDataset(data).ok());
}

TEST(ValidateDatasetTest, RejectsNonFiniteFeatureWithLocation) {
  Dataset data(2);
  data.AppendRow({0.1, 0.2});
  data.AppendRow({0.3, kNan});
  ExpectInvalid(ValidateDataset(data), "feature 1 row 1");
}

TEST(ValidateDatasetTest, RejectsNonFiniteTarget) {
  Dataset data(1);
  data.AppendRow({0.5}, kInf);
  ExpectInvalid(ValidateDataset(data), "target row 0");
}

class ValidateGamFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    Dataset data(2);
    for (int i = 0; i < 300; ++i) {
      double u = rng.Uniform();
      double v = rng.Uniform();
      data.AppendRow({u, v}, std::sin(6.0 * u) + v * v);
    }
    TermList terms;
    terms.push_back(std::make_unique<InterceptTerm>());
    terms.push_back(std::make_unique<SplineTerm>(0, 0.0, 1.0, 10));
    terms.push_back(std::make_unique<SplineTerm>(1, 0.0, 1.0, 10));
    ASSERT_TRUE(gam_.Fit(std::move(terms), data, GamConfig{}));
  }

  Gam gam_;
};

TEST_F(ValidateGamFixture, AcceptsFreshlyFittedModel) {
  EXPECT_TRUE(ValidateGam(gam_).ok());
}

TEST_F(ValidateGamFixture, RejectsUnfittedModel) {
  Gam unfitted;
  ExpectInvalid(ValidateGam(unfitted), "not fitted");
}

TEST_F(ValidateGamFixture, VectorPredictChecksRowWidth) {
  // The fitted terms read features 0 and 1; a one-element row must be
  // rejected in release builds too (GEF_CHECK, not DCHECK).
  EXPECT_DEATH(gam_.PredictRaw({0.5}), "GEF_CHECK failed");
  EXPECT_DEATH(gam_.TermContribution(1, {0.5}), "GEF_CHECK failed");
}

}  // namespace
}  // namespace gef
