// Negative-compile fixture: calling a GEF_REQUIRES(mu) function without
// holding mu must trip -Wthread-safety (requires-capability diagnostic).
// The test FAILS if this file compiles cleanly.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    // planted: IncrementLocked requires mutex_, which is not held here.
    IncrementLocked();
  }

 private:
  void IncrementLocked() GEF_REQUIRES(mutex_) { ++count_; }

  gef::Mutex mutex_;
  long count_ GEF_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return 0;
}
