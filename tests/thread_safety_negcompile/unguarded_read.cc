// Negative-compile fixture: reading a GEF_GUARDED_BY field without its
// mutex must trip -Wthread-safety (guarded_by diagnostic). Compiled with
// -fsyntax-only under Clang by thread_safety_negcompile_test.cmake; the
// test FAILS if this file compiles cleanly — that would mean the
// analysis is disarmed and every annotation in src/ is decorative.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(long amount) {
    gef::MutexLock lock(mutex_);
    balance_ += amount;
  }

  long UnsafePeek() {
    return balance_;  // planted: no lock held
  }

 private:
  gef::Mutex mutex_;
  long balance_ GEF_GUARDED_BY(mutex_) = 0;
};

long Use() {
  Account account;
  account.Deposit(1);
  return account.UnsafePeek();
}

}  // namespace

int main() { return Use() == 1 ? 0 : 1; }
