// Control fixture: correct lock discipline across every wrapper type —
// MutexLock scopes, a GEF_REQUIRES helper called under the lock, a
// CondVar wait loop, and reader/writer scopes on a SharedMutex. Must
// compile CLEAN under -Wthread-safety -Werror; if it does not, the
// harness (not the analysis) is broken, so the two negative fixtures
// would fail for the wrong reason.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int value) {
    gef::MutexLock lock(mutex_);
    next_ = value;
    full_ = true;
    cv_.NotifyOne();
  }

  int Pop() {
    gef::MutexLock lock(mutex_);
    while (!full_) cv_.Wait(mutex_);
    return TakeLocked();
  }

 private:
  int TakeLocked() GEF_REQUIRES(mutex_) {
    full_ = false;
    return next_;
  }

  gef::Mutex mutex_;
  gef::CondVar cv_;
  bool full_ GEF_GUARDED_BY(mutex_) = false;
  int next_ GEF_GUARDED_BY(mutex_) = 0;
};

class Table {
 public:
  void Set(int value) {
    gef::WriterMutexLock lock(shared_mutex_);
    value_ = value;
  }

  int Get() const {
    gef::ReaderMutexLock lock(shared_mutex_);
    return value_;
  }

 private:
  mutable gef::SharedMutex shared_mutex_;
  int value_ GEF_GUARDED_BY(shared_mutex_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.Push(3);
  Table table;
  table.Set(queue.Pop());
  return table.Get() == 3 ? 0 : 1;
}
