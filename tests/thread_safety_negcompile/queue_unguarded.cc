// Negative-compile fixture: the reactor's bounded request queue
// (serve/reactor.h) annotates its fields with GEF_GUARDED_BY and
// exposes SizeLocked() behind GEF_REQUIRES(mutex_). Calling it without
// holding the mutex must trip -Wthread-safety — this compiles the REAL
// serving header, so the test proves the shipped queue's annotations
// are armed, not a replica's. The test FAILS if this file compiles
// cleanly under -Wthread-safety -Werror.

#include "serve/reactor.h"

namespace {

size_t UnsafeDepth(gef::serve::BoundedRequestQueue* queue) {
  return queue->SizeLocked();  // planted: mutex_ not held
}

}  // namespace

int main() {
  gef::serve::BoundedRequestQueue queue(4);
  return UnsafeDepth(&queue) == 0 ? 0 : 1;
}
