// Tests for the shared thread pool: chunk-grid correctness, pool reuse,
// exception propagation, nested-call safety, and the determinism
// contract — batch prediction, D* labeling, and Kernel SHAP must be
// bit-identical at every thread count.

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "explain/kernelshap.h"
#include "forest/gbdt_trainer.h"
#include "gef/sampling.h"
#include "util/parallel.h"

namespace gef {
namespace {

// Restores the thread-count default when a test exits, so one test's
// SetNumThreads override never leaks into another.
struct ThreadCountGuard {
  ~ThreadCountGuard() { SetNumThreads(0); }
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 8}) {
    SetNumThreads(threads);
    for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      ParallelFor(0, n, 16, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
    }
  }
}

TEST(ParallelForTest, GrainOneMatchesGrainN) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  const size_t n = 257;
  std::vector<double> fine(n, 0.0), coarse(n, 0.0);
  ParallelFor(0, n, 1, [&](size_t i) { fine[i] = 3.0 * i + 1.0; });
  ParallelFor(0, n, n, [&](size_t i) { coarse[i] = 3.0 * i + 1.0; });
  EXPECT_EQ(fine, coarse);
}

TEST(ParallelForTest, ChunkBoundariesDependOnGrainNotThreads) {
  ThreadCountGuard guard;
  // Record the (begin, end) pairs the chunked flavour hands out; the
  // grid must be identical at 1 and 8 threads.
  auto collect = [](int threads) {
    SetNumThreads(threads);
    std::vector<std::pair<size_t, size_t>> chunks(7);
    ParallelForChunked(3, 45, 7, [&](size_t b, size_t e) {
      chunks[(b - 3) / 7] = {b, e};
    });
    return chunks;
  };
  EXPECT_EQ(collect(1), collect(8));
}

TEST(ParallelReduceTest, SumsMatchSerialAtEveryThreadCount) {
  ThreadCountGuard guard;
  const size_t n = 1003;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 0.1 * i - 17.0;
  SetNumThreads(1);
  double serial = ParallelReduce<double>(
      0, n, 64, 0.0,
      [&](size_t b, size_t e) {
        return std::accumulate(values.begin() + b, values.begin() + e, 0.0);
      },
      [](double* acc, double part) { *acc += part; });
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    double parallel = ParallelReduce<double>(
        0, n, 64, 0.0,
        [&](size_t b, size_t e) {
          return std::accumulate(values.begin() + b, values.begin() + e, 0.0);
        },
        [](double* acc, double part) { *acc += part; });
    // Same chunk grid, same fold order: bit-identical, not just close.
    EXPECT_EQ(parallel, serial);
  }
}

TEST(ParallelPoolTest, ReusedAcrossManyCalls) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  // Hammer the pool with many small dispatches; wrong wakeup or
  // remaining-count bookkeeping shows up here as a hang or a lost index.
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> total{0};
    ParallelFor(0, 37, 5, [&](size_t i) { total.fetch_add(i); });
    EXPECT_EQ(total.load(), 37u * 36u / 2);
  }
}

TEST(ParallelPoolTest, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 4,
                    [&](size_t i) {
                      if (i == 42) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must survive a throwing job and accept new work.
    std::atomic<int> count{0};
    ParallelFor(0, 16, 2, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 16);
  }
}

TEST(ParallelPoolTest, NestedCallsRunSeriallyWithoutDeadlock) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(0, 8, 1, [&](size_t outer) {
    // Inner loop from inside a worker: must degrade to inline serial
    // execution instead of waiting on the (busy) pool.
    ParallelFor(0, 8, 1,
                [&](size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// End-to-end determinism: the library-level outputs the ISSUE pins down
// must be bit-identical at GEF_NUM_THREADS = 1, 2, 8.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7701);
    data_ = MakeGPrimeDataset(600, &rng);
    GbdtConfig config;
    config.num_trees = 25;
    config.num_leaves = 8;
    forest_ = TrainGbdt(data_, nullptr, config).forest;
  }
  void TearDown() override { SetNumThreads(0); }

  Dataset data_{0};
  Forest forest_;
};

TEST_F(ParallelDeterminismTest, PredictBatchBitIdentical) {
  SetNumThreads(1);
  std::vector<double> baseline = forest_.PredictRawBatch(data_);
  std::vector<double> baseline_prob = forest_.PredictBatch(data_);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    EXPECT_EQ(forest_.PredictRawBatch(data_), baseline);
    EXPECT_EQ(forest_.PredictBatch(data_), baseline_prob);
  }
}

TEST_F(ParallelDeterminismTest, SyntheticDatasetLabelsBitIdentical) {
  std::vector<std::vector<double>> domains(forest_.num_features());
  for (auto& domain : domains) domain = {0.0, 0.25, 0.5, 0.75, 1.0};
  SetNumThreads(1);
  Rng rng1(88);
  Dataset baseline = GenerateSyntheticDataset(forest_, domains, 300, &rng1);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    Rng rng(88);
    Dataset dstar = GenerateSyntheticDataset(forest_, domains, 300, &rng);
    ASSERT_EQ(dstar.num_rows(), baseline.num_rows());
    EXPECT_EQ(dstar.targets(), baseline.targets());
    for (size_t f = 0; f < dstar.num_features(); ++f) {
      EXPECT_EQ(dstar.Column(f), baseline.Column(f));
    }
  }
}

TEST_F(ParallelDeterminismTest, KernelShapBitIdentical) {
  KernelShapConfig config;
  config.background_rows = 40;
  std::vector<double> x = {0.3, 0.8, 0.1, 0.6, 0.5};
  SetNumThreads(1);
  KernelShapExplainer serial(forest_, data_, config);
  ShapExplanation baseline = serial.Explain(x);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    KernelShapExplainer explainer(forest_, data_, config);
    ShapExplanation e = explainer.Explain(x);
    EXPECT_EQ(e.base_value, baseline.base_value);
    EXPECT_EQ(e.values, baseline.values);
  }
}

}  // namespace
}  // namespace gef
