// gef_loadgen — closed- and open-loop load generator for gef_serve.
//
// Closed loop (default): opens N persistent keep-alive connections and
// hammers one endpoint back-to-back for a fixed duration — measures the
// server's capacity, but a slow response slows the offered load too.
//
// Open loop (--open-loop --target-qps N): each connection runs an
// independent Poisson arrival process (their superposition is Poisson
// at the target rate) and every latency sample is measured from the
// request's INTENDED send time, not the actual write. When the server
// (or this client) falls behind, the backlog delay is charged to the
// request — the coordinated-omission correction — so overload shows up
// as a growing tail instead of silently shrinking the offered load.
// 429 load-shed responses are counted separately from errors; latency
// quantiles cover served (200) requests only.
//
// Rows are drawn deterministically from stats/rng (seeded per
// connection) over the feature count discovered via GET /v1/models, so
// runs are reproducible.
//
// Usage:
//   gef_loadgen --port <port> [--host 127.0.0.1]
//               [--endpoint predict|explain|mixed] [--connections 4]
//               [--duration-s 5] [--model <name>] [--seed 1]
//               [--open-loop] [--target-qps 1000]
//               [--pipeline 1]   (closed loop: requests per burst sent
//                                 back-to-back on each connection)
//               [--out report.json]   (gef-bench-v1 serving workload,
//                                      mergeable via bench_report --serving)
//               [--workload-name serving_predict]
//               [--batching-label on|off]  (recorded in the report)
//   gef_loadgen --port <port> --check
//               (smoke mode: one request per endpoint, exit 0 iff all
//                succeed — the serve-smoke ctest uses this instead of curl)
//
// Exit codes: 0 success, 1 bad usage, 2 connection/protocol failure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.h"
#include "stats/rng.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace gef {
namespace {

/// Minimal blocking HTTP/1.1 client connection (keep-alive).
class ClientConnection {
 public:
  ~ClientConnection() { Close(); }

  bool Connect(const std::string& host, int port) {
    Close();
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool connected() const { return fd_ >= 0; }

  /// Sends one request and blocks for the full response. Returns false
  /// on any transport or protocol failure (connection left closed).
  bool RoundTrip(const std::string& method, const std::string& target,
                 const std::string& body, int* status_out,
                 std::string* body_out) {
    std::string request = method + " " + target + " HTTP/1.1\r\n" +
                          "Host: loadgen\r\n";
    if (!body.empty() || method == "POST") {
      request +=
          "Content-Type: application/json\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n";
    }
    request += "\r\n" + body;
    return RoundTripRaw(request, status_out, body_out);
  }

  /// Hot-path round trip over a pre-serialized request (the timing
  /// loops pre-build their request bytes so the clock measures the
  /// server, not client-side string assembly).
  bool RoundTripRaw(const std::string& request, int* status_out,
                    std::string* body_out) {
    if (!SendAll(request)) {
      Close();
      return false;
    }
    if (!ReadResponse(status_out, body_out)) {
      Close();
      return false;
    }
    return true;
  }

  /// Writes `count` back-to-back pipelined requests in one syscall,
  /// then collects every response. Statuses are appended to
  /// `statuses_out`. Returns false on transport/protocol failure.
  bool Pipeline(const std::string& burst, size_t count,
                std::vector<int>* statuses_out) {
    if (!SendAll(burst)) {
      Close();
      return false;
    }
    std::string body;
    for (size_t i = 0; i < count; ++i) {
      int status = 0;
      if (!ReadResponse(&status, &body)) {
        Close();
        return false;
      }
      statuses_out->push_back(status);
    }
    return true;
  }

 private:
  bool SendAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = send(fd_, bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool FillBuffer() {
    char chunk[8192];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  bool ReadResponse(int* status_out, std::string* body_out) {
    size_t header_end = std::string::npos;
    while ((header_end = buffer_.find("\r\n\r\n")) ==
           std::string::npos) {
      if (buffer_.size() > 64 * 1024) return false;
      if (!FillBuffer()) return false;
    }
    // Status line: HTTP/1.1 NNN Reason
    if (header_end < 12 || buffer_.compare(0, 5, "HTTP/") != 0) {
      return false;
    }
    *status_out = std::atoi(buffer_.c_str() + 9);

    // Header scan without per-line allocation: gef_serve emits
    // canonical capitalization, so one case-sensitive find with a
    // lowercase fallback covers any HTTP/1.1 server.
    size_t content_length = 0;
    size_t cl = buffer_.find("Content-Length:");
    if (cl == std::string::npos || cl > header_end) {
      cl = buffer_.find("content-length:");
    }
    if (cl != std::string::npos && cl < header_end) {
      content_length =
          static_cast<size_t>(std::atol(buffer_.c_str() + cl + 15));
    }
    const size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      if (!FillBuffer()) return false;
    }
    *body_out = buffer_.substr(body_start, content_length);
    buffer_.erase(0, body_start + content_length);
    return true;
  }

  int fd_ = -1;
  std::string buffer_;  // bytes past the previous response
};

std::string PredictBody(const std::string& model,
                        const std::vector<double>& row) {
  std::string body = "{";
  if (!model.empty()) {
    body += "\"model\":\"" + serve::JsonEscapeString(model) + "\",";
  }
  body += "\"row\":" + serve::JsonNumberArray(row) + "}";
  return body;
}

/// Discovers the feature count of the target model via GET /v1/models.
bool DiscoverFeatures(const std::string& host, int port,
                      const std::string& model, size_t* features) {
  ClientConnection connection;
  if (!connection.Connect(host, port)) return false;
  int status = 0;
  std::string body;
  if (!connection.RoundTrip("GET", "/v1/models", "", &status, &body) ||
      status != 200) {
    return false;
  }
  StatusOr<serve::Json> parsed = serve::ParseJson(body);
  if (!parsed.ok()) return false;
  const serve::Json* models = parsed.value().Find("models");
  if (models == nullptr || !models->is_array()) return false;
  for (const serve::Json& entry : models->array) {
    const serve::Json* name = entry.Find("name");
    const serve::Json* width = entry.Find("features");
    if (width == nullptr || !width->is_number()) continue;
    if (model.empty() || (name != nullptr && name->str == model)) {
      *features = static_cast<size_t>(width->number);
      return true;
    }
  }
  return false;
}

struct WorkerResult {
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;  // 429 responses: load shedding, not failure
  std::vector<double> latencies_s;
};

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const double index = q * static_cast<double>(sorted->size() - 1);
  const size_t lo = static_cast<size_t>(index);
  const size_t hi = lo + 1 < sorted->size() ? lo + 1 : lo;
  const double frac = index - static_cast<double>(lo);
  return (*sorted)[lo] * (1.0 - frac) + (*sorted)[hi] * frac;
}

int RunCheck(const std::string& host, int port,
             const std::string& model, size_t features) {
  ClientConnection connection;
  if (!connection.Connect(host, port)) {
    std::fprintf(stderr, "cannot connect to %s:%d\n", host.c_str(),
                 port);
    return 2;
  }
  int status = 0;
  std::string body;

  if (!connection.RoundTrip("GET", "/healthz", "", &status, &body) ||
      status != 200) {
    std::fprintf(stderr, "healthz failed (status %d)\n", status);
    return 2;
  }
  if (!connection.RoundTrip("GET", "/v1/models", "", &status, &body) ||
      status != 200) {
    std::fprintf(stderr, "models failed (status %d)\n", status);
    return 2;
  }
  Rng rng(1);
  std::vector<double> row(features);
  for (double& v : row) v = rng.Uniform();
  if (!connection.RoundTrip("POST", "/v1/predict",
                            PredictBody(model, row), &status, &body) ||
      status != 200) {
    std::fprintf(stderr, "predict failed (status %d): %s\n", status,
                 body.c_str());
    return 2;
  }
  if (!connection.RoundTrip("POST", "/v1/explain",
                            PredictBody(model, row), &status, &body) ||
      status != 200) {
    std::fprintf(stderr, "explain failed (status %d): %s\n", status,
                 body.c_str());
    return 2;
  }
  // Malformed input must answer 400, not kill the connection.
  if (!connection.RoundTrip("POST", "/v1/predict", "{not json",
                            &status, &body) ||
      status != 400) {
    std::fprintf(stderr, "bad JSON answered %d, want 400\n", status);
    return 2;
  }
  if (!connection.RoundTrip("GET", "/metrics", "", &status, &body) ||
      status != 200 ||
      body.find("serve.requests.predict") == std::string::npos) {
    std::fprintf(stderr, "metrics failed (status %d)\n", status);
    return 2;
  }
  std::printf("check passed (model width %zu)\n", features);
  return 0;
}

int Run(int argc, const char* const* argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;

  std::string host = flags.GetString("host", "127.0.0.1");
  int port = flags.GetInt("port", 0);
  std::string endpoint = flags.GetString("endpoint", "predict");
  int connections = flags.GetInt("connections", 4);
  double duration_s = flags.GetDouble("duration-s", 5.0);
  std::string model = flags.GetString("model", "");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  std::string out_path = flags.GetString("out", "");
  std::string workload_name =
      flags.GetString("workload-name", "serving_" + endpoint);
  std::string batching_label = flags.GetString("batching-label", "on");
  bool check = flags.GetBool("check", false);
  bool open_loop = flags.GetBool("open-loop", false);
  double target_qps = flags.GetDouble("target-qps", 0.0);
  int pipeline = flags.GetInt("pipeline", 1);

  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 1;
  }
  std::vector<std::string> unread = flags.UnreadFlags();
  if (!unread.empty()) {
    std::fprintf(stderr, "unknown flag(s): --%s\n",
                 Join(unread, ", --").c_str());
    return 1;
  }
  if (port <= 0) {
    std::fprintf(stderr, "usage: gef_loadgen --port <port> [options]\n");
    return 1;
  }
  if (endpoint != "predict" && endpoint != "explain" &&
      endpoint != "mixed") {
    std::fprintf(stderr, "unknown --endpoint '%s'\n", endpoint.c_str());
    return 1;
  }
  if (connections < 1) {
    std::fprintf(stderr, "--connections must be >= 1\n");
    return 1;
  }
  if (open_loop && target_qps <= 0.0) {
    std::fprintf(stderr, "--open-loop requires --target-qps > 0\n");
    return 1;
  }
  if (pipeline < 1 || (open_loop && pipeline != 1)) {
    std::fprintf(stderr,
                 "--pipeline must be >= 1 (closed loop only)\n");
    return 1;
  }

  size_t features = 0;
  if (!DiscoverFeatures(host, port, model, &features)) {
    std::fprintf(stderr,
                 "cannot discover model features from %s:%d\n",
                 host.c_str(), port);
    return 2;
  }
  if (check) return RunCheck(host, port, model, features);

  // Pre-serialize the full request bytes: JSON number formatting and
  // header assembly cost more than a loopback round-trip, and paying
  // them inside the timing loop would measure the client, not the
  // server (they share this machine's cores).
  constexpr size_t kBodyPool = 1024;
  const auto build_request = [](const std::string& target,
                                const std::string& body) {
    return "POST " + target +
           " HTTP/1.1\r\nHost: loadgen\r\nContent-Type: "
           "application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
  };
  const auto use_explain = [&endpoint](size_t i) {
    return endpoint == "explain" ||
           (endpoint == "mixed" && (i % 8) == 0);
  };
  std::vector<std::string> requests_pool;
  requests_pool.reserve(kBodyPool);
  {
    Rng rng(seed);
    std::vector<double> row(features);
    for (size_t i = 0; i < kBodyPool; ++i) {
      for (double& v : row) v = rng.Uniform();
      requests_pool.push_back(build_request(
          use_explain(i) ? "/v1/explain" : "/v1/predict",
          PredictBody(model, row)));
    }
  }
  // Pipelined bursts: `pipeline` back-to-back requests per syscall.
  const size_t burst_len = static_cast<size_t>(pipeline);
  std::vector<std::string> bursts;
  if (burst_len > 1) {
    bursts.reserve(kBodyPool);
    for (size_t j = 0; j < kBodyPool; ++j) {
      std::string burst;
      for (size_t k = 0; k < burst_len; ++k) {
        burst += requests_pool[(j + k) % kBodyPool];
      }
      bursts.push_back(std::move(burst));
    }
  }

  std::vector<WorkerResult> results(
      static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(duration_s));

  // Per-connection Poisson rate; the superposition of `connections`
  // independent Poisson processes is Poisson at target_qps.
  const double per_conn_rate =
      open_loop ? target_qps / static_cast<double>(connections) : 0.0;

  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[static_cast<size_t>(c)];
      ClientConnection connection;
      if (!connection.Connect(host, port)) {
        failed.store(true);
        return;
      }
      uint64_t i = static_cast<uint64_t>(c) * 131;
      Rng arrivals(seed * 7919 + static_cast<uint64_t>(c) + 1);
      auto intended = std::chrono::steady_clock::now();
      while (true) {
        if (open_loop) {
          // Exponential inter-arrival gap. The intended schedule never
          // waits for the previous response: when a round trip runs
          // long, the next request fires immediately and its latency
          // sample is charged from the time it SHOULD have been sent.
          const double u = arrivals.Uniform();
          const double gap_s =
              -std::log(1.0 - std::min(u, 0.999999999)) / per_conn_rate;
          intended += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(gap_s));
          if (intended >= deadline) break;
          std::this_thread::sleep_until(intended);
        } else {
          intended = std::chrono::steady_clock::now();
          if (intended >= deadline) break;
        }
        std::vector<int> statuses;
        bool ok;
        if (burst_len > 1) {
          ok = connection.connected() &&
               connection.Pipeline(bursts[i % kBodyPool], burst_len,
                                   &statuses);
        } else {
          int status = 0;
          std::string body;
          ok = connection.connected() &&
               connection.RoundTripRaw(requests_pool[i % kBodyPool],
                                       &status, &body);
          statuses.push_back(status);
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - intended;
        ++i;
        if (!ok) {
          // Reconnect once; a dropped keep-alive counts as an error.
          ++result.errors;
          if (!connection.Connect(host, port)) {
            failed.store(true);
            return;
          }
          continue;
        }
        for (const int status : statuses) {
          ++result.requests;
          if (status == 429) {
            ++result.shed;
          } else if (status != 200) {
            ++result.errors;
          } else {
            // Quantiles describe served requests; shed requests are
            // accounted in `shed`, not hidden inside the tail. A
            // pipelined burst charges every response the full burst
            // round trip — pessimistic, never flattering.
            result.latencies_s.push_back(elapsed.count());
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (failed.load()) {
    std::fprintf(stderr, "a connection could not be (re)established\n");
    return 2;
  }

  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  std::vector<double> latencies;
  for (WorkerResult& result : results) {
    requests += result.requests;
    errors += result.errors;
    shed += result.shed;
    latencies.insert(latencies.end(), result.latencies_s.begin(),
                     result.latencies_s.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps =
      duration_s > 0 ? static_cast<double>(requests) / duration_s : 0.0;
  const double served_qps =
      duration_s > 0
          ? static_cast<double>(latencies.size()) / duration_s
          : 0.0;
  const double p50_ms = Percentile(&latencies, 0.50) * 1e3;
  const double p90_ms = Percentile(&latencies, 0.90) * 1e3;
  const double p99_ms = Percentile(&latencies, 0.99) * 1e3;
  const double p999_ms = Percentile(&latencies, 0.999) * 1e3;

  std::printf(
      "mode=%s endpoint=%s connections=%d duration=%.1fs requests=%llu "
      "errors=%llu shed=%llu\nqps=%.0f served_qps=%.0f p50=%.3fms "
      "p90=%.3fms p99=%.3fms p999=%.3fms\n",
      open_loop ? "open-loop" : "closed-loop", endpoint.c_str(),
      connections, duration_s,
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(shed), qps, served_qps, p50_ms,
      p90_ms, p99_ms, p999_ms);

  if (errors > requests / 100) {
    std::fprintf(stderr, "error rate above 1%%\n");
    return 2;
  }

  if (!out_path.empty()) {
    // One gef-bench-v1 workload carrying a "serving" section;
    // bench_report --serving merges it into the PR report.
    std::string json = "{\n  \"schema\": \"gef-bench-v1\",\n";
    json += "  \"pr\": \"PR9\",\n  \"smoke\": false,\n";
    json += "  \"num_threads\": " + std::to_string(connections) + ",\n";
    json += "  \"workloads\": [\n    {\n";
    json += "      \"name\": \"" +
            serve::JsonEscapeString(workload_name) + "\",\n";
    json += "      \"serving\": {\n";
    json += "        \"endpoint\": \"" +
            serve::JsonEscapeString(endpoint) + "\",\n";
    json += "        \"mode\": \"";
    json += open_loop ? "open-loop" : "closed-loop";
    json += "\",\n";
    json += "        \"pipeline\": " + std::to_string(pipeline) + ",\n";
    if (open_loop) {
      json += "        \"target_qps\": " +
              serve::JsonNumberText(target_qps) + ",\n";
    }
    json += "        \"batching\": \"" +
            serve::JsonEscapeString(batching_label) + "\",\n";
    json += "        \"connections\": " + std::to_string(connections) +
            ",\n";
    json += "        \"duration_s\": " +
            serve::JsonNumberText(duration_s) + ",\n";
    json += "        \"requests\": " + std::to_string(requests) + ",\n";
    json += "        \"errors\": " + std::to_string(errors) + ",\n";
    json += "        \"shed\": " + std::to_string(shed) + ",\n";
    json += "        \"qps\": " + serve::JsonNumberText(qps) + ",\n";
    json += "        \"served_qps\": " +
            serve::JsonNumberText(served_qps) + ",\n";
    json += "        \"latency_p50_ms\": " +
            serve::JsonNumberText(p50_ms) + ",\n";
    json += "        \"latency_p90_ms\": " +
            serve::JsonNumberText(p90_ms) + ",\n";
    json += "        \"latency_p99_ms\": " +
            serve::JsonNumberText(p99_ms) + ",\n";
    json += "        \"latency_p999_ms\": " +
            serve::JsonNumberText(p999_ms) + "\n";
    json += "      }\n    }\n  ]\n}\n";
    FILE* file = std::fopen(out_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::fputs(json.c_str(), file);
    std::fclose(file);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gef

int main(int argc, char** argv) { return gef::Run(argc, argv); }
