// gef_explain — command-line GEF explainer.
//
// Takes a forest model file (native gef format or a LightGBM text dump),
// runs the full data-free GEF pipeline, and writes a summary report plus
// optional CSV spline curves and a local explanation of one instance.
//
// Usage:
//   gef_explain --model forest.txt [--format gef|lightgbm]
//               [--univariate 5] [--bivariate 0]
//               [--sampling all-thresholds|k-quantile|equi-width|
//                           k-means|equi-size]
//               [--k 64] [--samples 10000]
//               [--interaction pair-gain|count-path|gain-path|h-stat]
//               [--surrogate spline_gam|boosted_fanova]
//               [--curves curves.csv] [--points 41]
//               [--explain "0.5,0.3,0.9,..."] [--seed 7]
//               [--save explanation.txt] [--load explanation.txt]
//               [--store-out store.gefs [--store-name model0]]
//               (pack forest + fitted surrogate into a binary model
//                store for gef_serve --store; DESIGN.md §3.17)
//               [--summary]   (print the forest model card and exit)
//               [--probe data.csv]  (evaluate fidelity on a CSV probe;
//                                    last column = target, used only for
//                                    AUC/accuracy context on classifiers)
//
// --save writes the fitted explanation (GAM + pipeline metadata) so
// later runs can skip the pipeline with --load and only re-run the
// local-explanation / export steps.
//
// Exit codes: 0 success, 1 bad usage, 2 model/pipeline failure.

#include <cstdio>
#include <string>

#include "forest/lightgbm_import.h"
#include "forest/serialization.h"
#include "forest/summary.h"
#include "data/csv.h"
#include "gef/evaluation.h"
#include "gef/explainer.h"
#include "gef/explanation_io.h"
#include "gef/local_explanation.h"
#include "gef/report.h"
#include "store/store_builder.h"
#include "surrogate/registry.h"
#include "util/shutdown.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace gef {
namespace {

bool ParseSampling(const std::string& name, SamplingStrategy* out) {
  for (SamplingStrategy strategy : AllSamplingStrategies()) {
    std::string canonical = SamplingStrategyName(strategy);
    for (char& c : canonical) c = std::tolower(c);
    if (name == canonical) {
      *out = strategy;
      return true;
    }
  }
  return false;
}

bool ParseInteraction(const std::string& name, InteractionStrategy* out) {
  for (InteractionStrategy strategy : AllInteractionStrategies()) {
    std::string canonical = InteractionStrategyName(strategy);
    for (char& c : canonical) c = std::tolower(c);
    if (name == canonical) {
      *out = strategy;
      return true;
    }
  }
  return false;
}

int Run(int argc, const char* const* argv) {
  // SIGINT mid-save must not leave a half-written explanation behind.
  InstallShutdownHandler();

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;

  std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr,
                 "usage: gef_explain --model <forest file> [options]\n"
                 "see the header of tools/gef_explain.cc for options\n");
    return 1;
  }
  std::string format = flags.GetString("format", "gef");

  StatusOr<Forest> forest = format == "lightgbm"
                                ? LoadLightGbmModel(model_path)
                                : LoadForest(model_path);
  if (!forest.ok()) {
    std::fprintf(stderr, "cannot load model: %s\n",
                 forest.status().ToString().c_str());
    return 2;
  }
  std::printf("model hash: %s\n",
              HashToHex(forest->ContentHash()).c_str());

  GefConfig config;
  config.num_univariate = flags.GetInt("univariate", 5);
  config.num_bivariate = flags.GetInt("bivariate", 0);
  config.k = flags.GetInt("k", 64);
  config.num_samples =
      static_cast<size_t>(flags.GetInt("samples", 10000));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  std::string sampling = flags.GetString("sampling", "equi-size");
  if (!ParseSampling(sampling, &config.sampling)) {
    std::fprintf(stderr, "unknown --sampling '%s'\n", sampling.c_str());
    return 1;
  }
  std::string interaction = flags.GetString("interaction", "gain-path");
  if (!ParseInteraction(interaction, &config.interaction)) {
    std::fprintf(stderr, "unknown --interaction '%s'\n",
                 interaction.c_str());
    return 1;
  }
  config.surrogate_backend =
      flags.GetString("surrogate", config.surrogate_backend);
  if (!SurrogateBackendExists(config.surrogate_backend)) {
    std::fprintf(stderr, "unknown --surrogate '%s' (known: %s)\n",
                 config.surrogate_backend.c_str(),
                 Join(SurrogateBackendNames(), ", ").c_str());
    return 1;
  }

  std::string curves_path = flags.GetString("curves", "");
  int points = flags.GetInt("points", 41);
  std::string instance_raw = flags.GetString("explain", "");
  std::string save_path = flags.GetString("save", "");
  std::string load_path = flags.GetString("load", "");
  std::string store_out = flags.GetString("store-out", "");
  std::string store_name = flags.GetString("store-name", "model0");
  bool summary_only = flags.GetBool("summary", false);
  std::string probe_path = flags.GetString("probe", "");

  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 1;
  }
  std::vector<std::string> unread = flags.UnreadFlags();
  if (!unread.empty()) {
    std::fprintf(stderr, "unknown flag(s): --%s\n",
                 Join(unread, ", --").c_str());
    return 1;
  }

  if (summary_only) {
    std::printf("%s",
                FormatForestSummary(SummarizeForest(*forest),
                                    forest->feature_names())
                    .c_str());
    return 0;
  }

  std::unique_ptr<GefExplanation> explanation;
  if (!load_path.empty()) {
    auto loaded = LoadExplanation(load_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load explanation: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    explanation = std::move(loaded).value();
    std::printf("loaded explanation from %s (pipeline skipped)\n",
                load_path.c_str());
  } else {
    explanation = ExplainForest(*forest, config);
    if (explanation == nullptr) {
      std::fprintf(stderr, "surrogate fit failed (%s)\n",
                   config.surrogate_backend.c_str());
      return 2;
    }
  }

  if (!save_path.empty()) {
    ScopedFileGuard guard(save_path);
    Status status = SaveExplanation(*explanation, save_path);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot save explanation: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    guard.Commit();
    std::printf("saved explanation to %s (%s hash %s)\n",
                save_path.c_str(),
                explanation->surrogate->backend_name().c_str(),
                HashToHex(explanation->surrogate->ContentHash()).c_str());
  }

  if (!store_out.empty()) {
    store::StoreBuilder builder;
    Status packed = builder.AddForest(store_name, *forest);
    if (packed.ok()) {
      packed = builder.AddSurrogate(store_name,
                                    ExplanationToString(*explanation),
                                    explanation->surrogate->backend_name());
    }
    if (packed.ok()) packed = builder.WriteTo(store_out);
    if (!packed.ok()) {
      std::fprintf(stderr, "cannot pack store: %s\n",
                   packed.ToString().c_str());
      return 2;
    }
    std::printf("packed store %s (%zu sections, model %s + surrogate)\n",
                store_out.c_str(), builder.num_sections(),
                store_name.c_str());
  }

  std::printf("%s", DescribeExplanation(*explanation, *forest).c_str());

  if (!probe_path.empty()) {
    auto probe = LoadCsv(probe_path, /*last_column_is_target=*/true);
    if (!probe.ok()) {
      std::fprintf(stderr, "cannot load probe: %s\n",
                   probe.status().ToString().c_str());
      return 2;
    }
    if (probe->num_features() != forest->num_features()) {
      std::fprintf(stderr,
                   "probe has %zu features, the forest expects %zu\n",
                   probe->num_features(), forest->num_features());
      return 1;
    }
    FidelityReport report =
        EvaluateFidelity(*explanation, *forest, *probe);
    std::printf("\nFidelity on %s (%zu rows): RMSE %.5f, MAE %.5f, "
                "R² %.5f\n",
                probe_path.c_str(), report.num_rows, report.rmse,
                report.mae, report.r2);
  }

  if (!curves_path.empty()) {
    Status status =
        ExportCurvesCsv(*explanation, *forest, curves_path, points);
    if (!status.ok()) {
      std::fprintf(stderr, "curve export failed: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    std::printf("\nwrote effect curves to %s\n", curves_path.c_str());
  }

  if (!instance_raw.empty()) {
    std::vector<double> instance;
    for (const std::string& field : Split(instance_raw, ',')) {
      double value = 0.0;
      if (!ParseDouble(field, &value)) {
        std::fprintf(stderr, "bad --explain value '%s'\n", field.c_str());
        return 1;
      }
      instance.push_back(value);
    }
    if (instance.size() != forest->num_features()) {
      std::fprintf(stderr,
                   "--explain needs %zu comma-separated values, got %zu\n",
                   forest->num_features(), instance.size());
      return 1;
    }
    LocalExplanation local =
        ExplainInstance(*explanation, *forest, instance);
    std::printf("\nLocal explanation:\n%s",
                FormatLocalExplanation(local).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gef

int main(int argc, char** argv) { return gef::Run(argc, argv); }
