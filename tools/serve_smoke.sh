#!/usr/bin/env bash
# serve-smoke: end-to-end check of the serving stack. Trains a small
# census model, starts gef_serve on an ephemeral loopback port, probes
# every endpoint through gef_loadgen --check (healthz, models, predict,
# explain, malformed-input 400, metrics), verifies the surrogate cache
# answered the repeated explain without a second fit, and finally
# SIGTERMs the server expecting a clean drain (exit 0). A second phase
# packs the model into a binary store (gef_store pack + verify), boots
# gef_serve --store from the mmap, and asserts the store metrics
# (store.mmap_bytes / store.load_ms) plus the same single-fit cache
# behavior across processes. A third phase saturates a deliberately
# tiny server (1 shard, 1 worker, queue capacity 1): the surplus must
# shed with 429 + Retry-After, serve.shed must increment, and /healthz
# must keep answering on the reactor's inline path throughout.
set -euo pipefail

DATASETS_BIN=$1
TRAIN_BIN=$2
SERVE_BIN=$3
LOADGEN_BIN=$4
STORE_BIN=$5
WORK_DIR=$6

mkdir -p "$WORK_DIR"
rm -f "$WORK_DIR/serve.log"

"$DATASETS_BIN" --name census --out "$WORK_DIR/census.csv" \
  --rows 800 --seed 3 > /dev/null
"$TRAIN_BIN" --data "$WORK_DIR/census.csv" --out "$WORK_DIR/model.txt" \
  --objective binary --trees 20 --leaves 8 > /dev/null

"$SERVE_BIN" --model "$WORK_DIR/model.txt" --name census --port 0 \
  --univariate 3 --samples 1500 --k 16 \
  > "$WORK_DIR/serve.log" 2>&1 &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    "$WORK_DIR/serve.log" | head -1)
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "server never reported its port:"
  cat "$WORK_DIR/serve.log"
  exit 1
fi

# Two passes: the second repeats /v1/explain with the identical config,
# which must be a cache hit (exactly one GEF fit overall).
"$LOADGEN_BIN" --port "$PORT" --check
"$LOADGEN_BIN" --port "$PORT" --check
"$LOADGEN_BIN" --port "$PORT" --endpoint predict --connections 2 \
  --duration-s 1 > "$WORK_DIR/loadgen.log"
cat "$WORK_DIR/loadgen.log"

METRICS_SNAPSHOT="$WORK_DIR/metrics.txt"
"$LOADGEN_BIN" --port "$PORT" --check > /dev/null  # refresh counters
kill -0 $SERVER_PID  # still alive

# Scrape /metrics via a plain TCP request from bash (no curl in image).
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3
cat <&3 > "$METRICS_SNAPSHOT"
exec 3<&- 3>&-

FITS=$(sed -n 's/^serve.gef_fits \([0-9]*\)$/\1/p' "$METRICS_SNAPSHOT")
HITS=$(sed -n 's/^serve.surrogate_cache.hits \([0-9]*\)$/\1/p' \
  "$METRICS_SNAPSHOT")
if [ "$FITS" != "1" ]; then
  echo "expected exactly one GEF fit, saw '$FITS'"
  exit 1
fi
if [ -z "$HITS" ] || [ "$HITS" -lt 1 ]; then
  echo "expected surrogate cache hits > 0, saw '$HITS'"
  exit 1
fi

kill -TERM $SERVER_PID
WAIT_STATUS=0
wait $SERVER_PID || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "server did not drain cleanly (exit $WAIT_STATUS):"
  cat "$WORK_DIR/serve.log"
  exit 1
fi
grep -q "drained, exiting" "$WORK_DIR/serve.log"

echo "serve smoke passed (port $PORT, fits=$FITS, cache hits=$HITS)"

# ---- Store phase: pack -> verify -> serve from the mmap ----

"$STORE_BIN" pack --out "$WORK_DIR/model.gefs" \
  --model census="$WORK_DIR/model.txt" > /dev/null
"$STORE_BIN" verify "$WORK_DIR/model.gefs" > /dev/null

rm -f "$WORK_DIR/serve_store.log"
"$SERVE_BIN" --store "$WORK_DIR/model.gefs" --port 0 \
  --univariate 3 --samples 1500 --k 16 \
  > "$WORK_DIR/serve_store.log" 2>&1 &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    "$WORK_DIR/serve_store.log" | head -1)
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "store-backed server never reported its port:"
  cat "$WORK_DIR/serve_store.log"
  exit 1
fi
grep -q "mmap-loaded model 'census'" "$WORK_DIR/serve_store.log"

# Same single-flight contract as the text-loaded server: the repeated
# explain must be answered by the cache (one fit in this process).
"$LOADGEN_BIN" --port "$PORT" --check
"$LOADGEN_BIN" --port "$PORT" --check
"$LOADGEN_BIN" --port "$PORT" --endpoint predict --connections 2 \
  --duration-s 1 > "$WORK_DIR/loadgen_store.log"
cat "$WORK_DIR/loadgen_store.log"

STORE_METRICS="$WORK_DIR/metrics_store.txt"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' >&3
cat <&3 > "$STORE_METRICS"
exec 3<&- 3>&-

MMAP_BYTES=$(sed -n 's/^store.mmap_bytes \([0-9.]*\)$/\1/p' "$STORE_METRICS")
LOAD_MS=$(sed -n 's/^store.load_ms \([0-9.e+-]*\)$/\1/p' "$STORE_METRICS")
FITS=$(sed -n 's/^serve.gef_fits \([0-9]*\)$/\1/p' "$STORE_METRICS")
HITS=$(sed -n 's/^serve.surrogate_cache.hits \([0-9]*\)$/\1/p' \
  "$STORE_METRICS")
if [ -z "$MMAP_BYTES" ] || [ "${MMAP_BYTES%%.*}" -le 0 ]; then
  echo "expected store.mmap_bytes > 0, saw '$MMAP_BYTES'"
  exit 1
fi
if [ -z "$LOAD_MS" ]; then
  echo "expected a store.load_ms metric, saw none"
  exit 1
fi
if [ "$FITS" != "1" ]; then
  echo "expected exactly one GEF fit in the store-backed server, saw '$FITS'"
  exit 1
fi
if [ -z "$HITS" ] || [ "$HITS" -lt 1 ]; then
  echo "expected surrogate cache hits > 0 in the store-backed server, " \
       "saw '$HITS'"
  exit 1
fi

kill -TERM $SERVER_PID
WAIT_STATUS=0
wait $SERVER_PID || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "store-backed server did not drain cleanly (exit $WAIT_STATUS):"
  cat "$WORK_DIR/serve_store.log"
  exit 1
fi
grep -q "drained, exiting" "$WORK_DIR/serve_store.log"

echo "store smoke passed (port $PORT, mmap_bytes=$MMAP_BYTES," \
     "load_ms=$LOAD_MS, fits=$FITS, cache hits=$HITS)"

# ---- Overload phase: 1 shard, 1 worker, queue capacity 1 — the
# surplus of a saturating burst must shed with 429 + Retry-After while
# the shard's inline GET path keeps /healthz and /metrics responsive ----

rm -f "$WORK_DIR/serve_overload.log"
"$SERVE_BIN" --model "$WORK_DIR/model.txt" --name census --port 0 \
  --shards 1 --workers 1 --queue-capacity 1 \
  --univariate 3 --samples 500000 --k 64 \
  > "$WORK_DIR/serve_overload.log" 2>&1 &
SERVER_PID=$!
trap 'kill -9 $SERVER_PID 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    "$WORK_DIR/serve_overload.log" | head -1)
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "overload server never reported its port:"
  cat "$WORK_DIR/serve_overload.log"
  exit 1
fi

# One close-mode GET via /dev/tcp (no curl in the image).
http_get() {
  exec 9<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' \
    "$1" >&9
  cat <&9 > "$2"
  exec 9<&- 9>&-
}

# Send a POST on a numbered fd and leave it open — the response is
# collected later so several requests can be in flight at once.
post_on_fd() {
  local fd=$1 target=$2 body=$3
  eval "exec $fd<>\"/dev/tcp/127.0.0.1/$PORT\""
  printf 'POST %s HTTP/1.1\r\nHost: smoke\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s' \
    "$target" "${#body}" "$body" >&"$fd"
}

http_get /v1/models "$WORK_DIR/models_overload.txt"
WIDTH=$(sed -n 's/.*"features":\([0-9]*\).*/\1/p' \
  "$WORK_DIR/models_overload.txt")
if [ -z "$WIDTH" ] || [ "$WIDTH" -lt 1 ]; then
  echo "could not read the model width from /v1/models"
  exit 1
fi
ROW="0.5"
for _ in $(seq 2 "$WIDTH"); do ROW="$ROW,0.5"; done
BODY="{\"row\":[$ROW]}"

# Occupy the only worker with a long surrogate fit (500k samples), then
# wait until the fit is actually running — the explain counter bumps at
# handler entry, and /metrics answers inline while the worker is busy.
post_on_fd 3 /v1/explain "$BODY"
EXPLAINS=""
for _ in $(seq 1 300); do
  http_get /metrics "$WORK_DIR/metrics_poll.txt"
  EXPLAINS=$(sed -n 's/^serve.requests.explain \([0-9]*\)$/\1/p' \
    "$WORK_DIR/metrics_poll.txt")
  [ "$EXPLAINS" = "1" ] && break
  sleep 0.01
done
if [ "$EXPLAINS" != "1" ]; then
  echo "explain never reached the worker (saw '$EXPLAINS')"
  exit 1
fi

# Saturating burst: three predicts against a capacity-1 queue. One is
# admitted (answered once the fit finishes); the surplus sheds now.
post_on_fd 4 /v1/predict "$BODY"
post_on_fd 5 /v1/predict "$BODY"
post_on_fd 6 /v1/predict "$BODY"

# The server must stay responsive while saturated.
http_get /healthz "$WORK_DIR/healthz_overload.txt"
grep -q " 200 " "$WORK_DIR/healthz_overload.txt"
grep -q '"ok"' "$WORK_DIR/healthz_overload.txt"

cat <&4 > "$WORK_DIR/burst_responses.txt"; exec 4<&- 4>&-
cat <&5 >> "$WORK_DIR/burst_responses.txt"; exec 5<&- 5>&-
cat <&6 >> "$WORK_DIR/burst_responses.txt"; exec 6<&- 6>&-

SHED_429=$(grep -c " 429 " "$WORK_DIR/burst_responses.txt" || true)
RETRY_AFTER=$(grep -c "^Retry-After:" "$WORK_DIR/burst_responses.txt" \
  || true)
if [ "$SHED_429" -lt 1 ]; then
  echo "saturating burst produced no 429s:"
  cat "$WORK_DIR/burst_responses.txt"
  exit 1
fi
if [ "$RETRY_AFTER" -lt "$SHED_429" ]; then
  echo "429 responses missing Retry-After ($RETRY_AFTER of $SHED_429):"
  cat "$WORK_DIR/burst_responses.txt"
  exit 1
fi
grep -q " 200 " "$WORK_DIR/burst_responses.txt" \
  || { echo "no burst predict was admitted"; exit 1; }

# The fit itself completes and answers 200.
cat <&3 > "$WORK_DIR/explain_overload.txt"; exec 3<&- 3>&-
grep -q " 200 " "$WORK_DIR/explain_overload.txt" \
  || { echo "in-flight explain failed under overload:"; \
       cat "$WORK_DIR/explain_overload.txt"; exit 1; }

http_get /metrics "$WORK_DIR/metrics_overload.txt"
SHED=$(sed -n 's/^serve.shed \([0-9]*\)$/\1/p' \
  "$WORK_DIR/metrics_overload.txt")
if [ -z "$SHED" ] || [ "$SHED" -lt 1 ]; then
  echo "expected serve.shed >= 1 after the burst, saw '$SHED'"
  exit 1
fi

# Open-loop mode end-to-end: offered load beyond the tiny server's
# capacity keeps the tool exit 0 (sheds are not errors) and reports
# honest intended-send-time latencies.
"$LOADGEN_BIN" --port "$PORT" --endpoint predict --open-loop \
  --target-qps 3000 --connections 2 --duration-s 1 \
  > "$WORK_DIR/loadgen_openloop.log"
cat "$WORK_DIR/loadgen_openloop.log"
grep -q "mode=open-loop" "$WORK_DIR/loadgen_openloop.log"

kill -TERM $SERVER_PID
WAIT_STATUS=0
wait $SERVER_PID || WAIT_STATUS=$?
trap - EXIT
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "overload server did not drain cleanly (exit $WAIT_STATUS):"
  cat "$WORK_DIR/serve_overload.log"
  exit 1
fi
grep -q "drained, exiting" "$WORK_DIR/serve_overload.log"

echo "overload smoke passed (port $PORT, burst 429s=$SHED_429," \
     "serve.shed=$SHED)"
