# Smoke test for bench_report: emit a scaled-down report with a JSONL
# trace, then validate the report against the schema and sanity-check
# the trace. Mirrors the CI bench-report job.

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(REPORT ${WORK_DIR}/BENCH_PR10.json)
set(TRACE ${WORK_DIR}/trace.jsonl)

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env GEF_TRACE=${TRACE}
          ${BENCH_REPORT_BIN} --smoke --out ${REPORT}
  RESULT_VARIABLE run_result
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_error)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR
      "bench_report --smoke failed (${run_result}):\n"
      "${run_output}\n${run_error}")
endif()

execute_process(
  COMMAND ${BENCH_REPORT_BIN} --validate ${REPORT}
  RESULT_VARIABLE validate_result
  OUTPUT_VARIABLE validate_output
  ERROR_VARIABLE validate_error)
if(NOT validate_result EQUAL 0)
  message(FATAL_ERROR
      "bench_report --validate failed (${validate_result}):\n"
      "${validate_output}\n${validate_error}")
endif()

# The JSONL trace must exist and contain spans for the core pipeline
# stages of both workloads.
if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "GEF_TRACE file was not written: ${TRACE}")
endif()
file(READ ${TRACE} trace_text)
foreach(span
    "forest.gbdt_train" "gef.feature_selection" "gef.sampling_domains"
    "gef.dstar_draw" "gef.dstar_label" "gef.interaction_selection"
    "gam.fit" "explain.treeshap" "explain.pdp_1d")
  string(FIND "${trace_text}" "\"name\":\"${span}\"" span_pos)
  if(span_pos EQUAL -1)
    message(FATAL_ERROR "trace is missing span '${span}': ${TRACE}")
  endif()
endforeach()

message(STATUS "bench_report smoke ok: ${REPORT}")
