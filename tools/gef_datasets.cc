// gef_datasets — emits the benchmark datasets as CSV so the experiments
// can be reproduced outside this repository (e.g. against the original
// Python GEF, LightGBM or PyGAM).
//
// Usage:
//   gef_datasets --name gprime|gdouble|additive-pair|sigmoid|
//                       superconductivity|census|census-raw
//                --out data.csv [--rows 10000] [--seed 42]
//                [--pairs "0-1,0-4,1-4"]   (gdouble / additive-pair)
//
// Exit codes: 0 success, 1 bad usage, 2 write failure.

#include <cstdio>

#include "data/census.h"
#include "data/csv.h"
#include "data/superconductivity.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace gef {
namespace {

bool ParsePairs(const std::string& raw,
                std::vector<std::pair<int, int>>* pairs) {
  pairs->clear();
  for (const std::string& field : Split(raw, ',')) {
    std::vector<std::string> sides = Split(field, '-');
    int a = 0, b = 0;
    if (sides.size() != 2 || !ParseInt(sides[0], &a) ||
        !ParseInt(sides[1], &b) || a < 0 || b < 0 ||
        a >= kNumSyntheticFeatures || b >= kNumSyntheticFeatures ||
        a == b) {
      return false;
    }
    pairs->emplace_back(std::min(a, b), std::max(a, b));
  }
  return !pairs->empty();
}

int Run(int argc, const char* const* argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;

  std::string name = flags.GetString("name", "");
  std::string out_path = flags.GetString("out", "");
  if (name.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: gef_datasets --name <dataset> --out <csv> "
                 "[--rows N] [--seed S] [--pairs \"0-1,...\"]\n");
    return 1;
  }
  size_t rows = static_cast<size_t>(flags.GetInt("rows", 10000));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  std::string pairs_raw = flags.GetString("pairs", "0-1,0-4,1-4");

  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 1;
  }
  std::vector<std::string> unread = flags.UnreadFlags();
  if (!unread.empty()) {
    std::fprintf(stderr, "unknown flag(s): --%s\n",
                 Join(unread, ", --").c_str());
    return 1;
  }

  Dataset dataset;
  if (name == "gprime") {
    dataset = MakeGPrimeDataset(rows, &rng);
  } else if (name == "gdouble") {
    std::vector<std::pair<int, int>> pairs;
    if (!ParsePairs(pairs_raw, &pairs)) {
      std::fprintf(stderr, "bad --pairs '%s'\n", pairs_raw.c_str());
      return 1;
    }
    dataset = MakeGDoublePrimeDataset(rows, pairs, &rng);
  } else if (name == "additive-pair") {
    std::vector<std::pair<int, int>> pairs;
    if (!ParsePairs(pairs_raw, &pairs)) {
      std::fprintf(stderr, "bad --pairs '%s'\n", pairs_raw.c_str());
      return 1;
    }
    dataset = MakeAdditivePairDataset(rows, pairs, &rng);
  } else if (name == "sigmoid") {
    dataset = MakeSigmoidDataset(rows, &rng);
  } else if (name == "superconductivity") {
    dataset = MakeSuperconductivityDataset(rows, &rng);
  } else if (name == "census") {
    dataset = MakeCensusDatasetEncoded(rows, &rng);
  } else if (name == "census-raw") {
    dataset = MakeCensusDatasetRaw(rows, &rng);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    return 1;
  }

  Status status = SaveCsv(dataset, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  std::printf("wrote %zu rows x %zu features (+target) to %s\n",
              dataset.num_rows(), dataset.num_features(),
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gef

int main(int argc, char** argv) { return gef::Run(argc, argv); }
