// gef_train — command-line forest trainer.
//
// Trains a GBDT or Random Forest on a CSV (last column = target) and
// writes the model in the native gef text format, ready for gef_explain.
// Together the two tools walk the paper's full third-party scenario from
// the shell:
//
//   gef_train  --data train.csv --out forest.txt --trees 200 --leaves 32
//   gef_explain --model forest.txt --univariate 7 --curves curves.csv
//
// Usage:
//   gef_train --data <csv> --out <model file>
//             [--objective regression|binary] [--algo gbdt|rf]
//             [--trees 100] [--leaves 31] [--lr 0.1]
//             [--min-leaf 20] [--subsample 1.0]
//             [--valid-fraction 0] [--early-stopping 0] [--seed 42]
//             [--store-out <store file> [--store-name model0]]
//             [--surrogate spline_gam|boosted_fanova]
//
// --store-out additionally packs the trained forest into a binary model
// store (src/store/, DESIGN.md §3.17) that gef_serve --store mmaps.
// With --surrogate, the GEF pipeline also runs on the fresh forest and
// the fitted explanation is packed alongside it (requires --store-out),
// so gef_serve boots with the surrogate preloaded — no first-request
// fit.
//
// Exit codes: 0 success, 1 bad usage, 2 data/training failure.

#include <cstdio>

#include "data/csv.h"
#include "data/split.h"
#include "forest/gbdt_trainer.h"
#include "forest/random_forest_trainer.h"
#include "forest/serialization.h"
#include "gef/explainer.h"
#include "gef/explanation_io.h"
#include "store/store_builder.h"
#include "surrogate/registry.h"
#include "util/shutdown.h"
#include "stats/metrics.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace gef {
namespace {

int Run(int argc, const char* const* argv) {
  // SIGINT mid-save must not leave a half-written model behind (the
  // guard around SaveForest below unlinks it from the handler).
  InstallShutdownHandler();

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;

  std::string data_path = flags.GetString("data", "");
  std::string out_path = flags.GetString("out", "");
  std::string store_out = flags.GetString("store-out", "");
  std::string store_name = flags.GetString("store-name", "model0");
  if (data_path.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: gef_train --data <csv> --out <model file> "
                 "[options]\nsee the header of tools/gef_train.cc\n");
    return 1;
  }

  std::string objective_name = flags.GetString("objective", "regression");
  Objective objective = objective_name == "binary"
                            ? Objective::kBinaryClassification
                            : Objective::kRegression;
  if (objective_name != "binary" && objective_name != "regression") {
    std::fprintf(stderr, "unknown --objective '%s'\n",
                 objective_name.c_str());
    return 1;
  }
  std::string algo = flags.GetString("algo", "gbdt");
  int trees = flags.GetInt("trees", 100);
  int leaves = flags.GetInt("leaves", 31);
  double lr = flags.GetDouble("lr", 0.1);
  int min_leaf = flags.GetInt("min-leaf", 20);
  double subsample = flags.GetDouble("subsample", 1.0);
  double valid_fraction = flags.GetDouble("valid-fraction", 0.0);
  int early_stopping = flags.GetInt("early-stopping", 0);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  std::string surrogate = flags.GetString("surrogate", "");
  if (!surrogate.empty() && !SurrogateBackendExists(surrogate)) {
    std::fprintf(stderr, "unknown --surrogate '%s' (known: %s)\n",
                 surrogate.c_str(),
                 Join(SurrogateBackendNames(), ", ").c_str());
    return 1;
  }
  if (!surrogate.empty() && store_out.empty()) {
    std::fprintf(stderr,
                 "--surrogate packs the fitted explanation into a store; "
                 "pass --store-out too\n");
    return 1;
  }

  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 1;
  }
  std::vector<std::string> unread = flags.UnreadFlags();
  if (!unread.empty()) {
    std::fprintf(stderr, "unknown flag(s): --%s\n",
                 Join(unread, ", --").c_str());
    return 1;
  }

  auto data = LoadCsv(data_path, /*last_column_is_target=*/true);
  if (!data.ok()) {
    std::fprintf(stderr, "cannot load data: %s\n",
                 data.status().ToString().c_str());
    return 2;
  }
  std::printf("loaded %zu rows x %zu features from %s\n",
              data->num_rows(), data->num_features(), data_path.c_str());

  Forest forest;
  Rng rng(seed);
  if (algo == "rf") {
    RandomForestConfig config;
    config.objective = objective;
    config.num_trees = trees;
    config.num_leaves = leaves;
    config.min_samples_leaf = min_leaf;
    config.seed = seed;
    forest = TrainRandomForest(*data, config);
  } else if (algo == "gbdt") {
    GbdtConfig config;
    config.objective = objective;
    config.num_trees = trees;
    config.num_leaves = leaves;
    config.learning_rate = lr;
    config.min_samples_leaf = min_leaf;
    config.subsample_rows = subsample;
    config.early_stopping_rounds = early_stopping;
    config.seed = seed;
    if (valid_fraction > 0.0) {
      TrainValidSplit split = SplitTrainValid(*data, valid_fraction, &rng);
      GbdtTrainResult result =
          TrainGbdt(split.train, &split.valid, config);
      forest = std::move(result.forest);
      std::printf("trained %zu trees (best iteration %d)\n",
                  forest.num_trees(), result.best_iteration);
    } else {
      if (early_stopping > 0) {
        std::fprintf(stderr,
                     "--early-stopping requires --valid-fraction > 0\n");
        return 1;
      }
      forest = TrainGbdt(*data, nullptr, config).forest;
    }
  } else {
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    return 1;
  }

  // Training-set quality (for the user's sanity, not a test metric).
  if (objective == Objective::kBinaryClassification) {
    std::printf("training accuracy: %.4f\n",
                Accuracy(forest.PredictBatch(*data), data->targets()));
  } else {
    std::printf("training RMSE: %.5f\n",
                Rmse(forest.PredictRawBatch(*data), data->targets()));
  }

  ScopedFileGuard guard(out_path);
  Status status = SaveForest(forest, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot save model: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  guard.Commit();
  std::printf("wrote %zu-tree forest to %s (hash %s)\n",
              forest.num_trees(), out_path.c_str(),
              HashToHex(forest.ContentHash()).c_str());

  if (!store_out.empty()) {
    store::StoreBuilder builder;
    Status packed = builder.AddForest(store_name, forest);
    if (packed.ok() && !surrogate.empty()) {
      GefConfig gef_config;
      gef_config.surrogate_backend = surrogate;
      gef_config.seed = seed;
      std::unique_ptr<GefExplanation> explanation =
          ExplainForest(forest, gef_config);
      if (explanation == nullptr) {
        std::fprintf(stderr, "surrogate fit failed (%s)\n",
                     surrogate.c_str());
        return 2;
      }
      std::printf("fitted %s surrogate (fidelity RMSE %.5f)\n",
                  surrogate.c_str(), explanation->fidelity_rmse_test);
      packed = builder.AddSurrogate(
          store_name, ExplanationToString(*explanation), surrogate);
    }
    if (packed.ok()) packed = builder.WriteTo(store_out);
    if (!packed.ok()) {
      std::fprintf(stderr, "cannot pack store: %s\n",
                   packed.ToString().c_str());
      return 2;
    }
    std::printf("packed store %s (%zu sections, model %s%s)\n",
                store_out.c_str(), builder.num_sections(),
                store_name.c_str(),
                surrogate.empty() ? "" : " + surrogate");
  }
  return 0;
}

}  // namespace
}  // namespace gef

int main(int argc, char** argv) { return gef::Run(argc, argv); }
