// bench_report: runs the standard synthetic + census workloads through
// the full GEF pipeline under the observability layer (src/obs) and
// emits a schema-stable BENCH_PRn.json — per-stage wall-times, D*
// labeling throughput, surrogate fidelity (R² / RMSE) and peak RSS — so
// every later PR has a perf trajectory to regress against.
//
// Usage:
//   bench_report [--out BENCH_PR10.json] [--smoke] [--workload all]
//                [--serving loadgen-on.json,loadgen-off.json]
//   bench_report --validate BENCH_PR10.json [--baseline BENCH_PR9.json]
//
// `--serving` (comma-separated list of files) merges the serving
// workloads emitted by gef_loadgen --out
// into the report, so one BENCH_PRn.json carries both the pipeline and
// the serving trajectory. A workload with a "serving" object is
// validated against the serving keys (qps, latency quantiles, errors)
// instead of the pipeline stage keys, and the baseline diff prints
// qps/p99 deltas for it.
//
// With GEF_TRACE=<path> set, the per-stage JSONL spans land there as a
// side artifact; without it, tracing runs in-memory only (aggregates
// still feed the report).
//
// Each pipeline workload also carries a "store" object comparing
// registry cold-start from the binary model store (src/store, mmap +
// compiled-array adoption) against re-parsing the text model: load
// wall-times, the speedup ratio, and a bitwise predict-parity flag.
//
// Each pipeline workload also carries a "surrogates" object: the
// two-backend fidelity head-to-head (DESIGN.md §3.19). The
// boosted_fanova backend is fitted on the *same* sampling artifacts
// (domains + D*) the spline pipeline consumed, so the r2/rmse/fit_s
// entries isolate the surrogate family from the sampling noise. The
// baseline diff drift-gates both backends once the baseline carries
// the object.
//
// `--validate` re-parses an emitted report with
// a strict JSON parser and checks every schema-required field, which is
// what the CI bench-report job gates on. Adding `--baseline` diffs the
// validated report against a prior one: per-stage wall-time deltas are
// printed as a markdown table (CI appends it to the job summary) and any
// fidelity drift beyond kFidelityDriftTol FAILS the run — a perf PR must
// not buy speed with accuracy.

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/census.h"
#include "data/synthetic.h"
#include "forest/gbdt_trainer.h"
#include "forest/serialization.h"
#include "store/store_builder.h"
#include "store/store_reader.h"
#include "gef/evaluation.h"
#include "gef/explainer.h"
#include "explain/pdp.h"
#include "explain/treeshap.h"
#include "obs/obs.h"
#include "obs/rss.h"
#include "serve/model_registry.h"
#include "util/flags.h"
#include "util/parallel.h"

namespace gef {
namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON parser for --validate: values become a tagged
// tree; any syntax error aborts validation with a message.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    if (!ParseValue(out, error)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(std::string* error, const std::string& what) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  bool Literal(const char* word, std::string* error) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(error, std::string("expected '") + word + "'");
      }
    }
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    if (text_[pos_] != '"') return Fail(error, "expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail(error, "bad escape");
        out->push_back(text_[pos_++]);
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Fail(error, "unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail(error, "unexpected end");
    char c = text_[pos_];
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return Literal("null", error);
    }
    if (c == 't' || c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = c == 't';
      return Literal(c == 't' ? "true" : "false", error);
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str, error);
    }
    if (c == '[') {
      out->type = JsonValue::Type::kArray;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue element;
        if (!ParseValue(&element, error)) return false;
        out->array.push_back(std::move(element));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail(error, "unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail(error, "expected ',' or ']'");
      }
    }
    if (c == '{') {
      out->type = JsonValue::Type::kObject;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (pos_ >= text_.size() || !ParseString(&key, error)) {
          return false;
        }
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail(error, "expected ':'");
        }
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value, error)) return false;
        out->object.emplace(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return Fail(error, "unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail(error, "expected ',' or '}'");
      }
    }
    // Number.
    size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail(error, "unexpected character");
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Report schema. Bump kSchema when a field changes meaning; add-only
// changes keep the version.

constexpr const char* kSchema = "gef-bench-v1";
constexpr const char* kPrLabel = "PR10";

// Surrogate backends every pipeline workload must report head-to-head
// (see surrogate/registry.h for the stable names).
const std::vector<const char*> kHeadToHeadBackends = {"spline_gam",
                                                     "boosted_fanova"};

// Numeric keys a serving workload's "serving" object must carry (see
// tools/gef_loadgen.cc, which emits them).
const std::vector<const char*> kServingNumberKeys = {
    "connections",     "duration_s",      "requests",
    "errors",          "qps",             "latency_p50_ms",
    "latency_p90_ms",  "latency_p99_ms",
};

// Stage keys every workload must report (seconds). Keep in sync with
// ValidateReport and DESIGN.md §3.12.
const std::vector<std::pair<const char*, const char*>> kStageSpans = {
    {"forest_train", "forest.gbdt_train"},
    {"feature_selection", "gef.feature_selection"},
    {"sampling_domains", "gef.sampling_domains"},
    {"dstar_draw", "gef.dstar_draw"},
    {"dstar_label", "gef.dstar_label"},
    {"interaction_selection", "gef.interaction_selection"},
    {"gam_fit", "gam.fit"},
    {"baseline_treeshap", "explain.treeshap"},
    {"baseline_pdp", "explain.pdp_1d"},
};

// One backend's entry in the fidelity head-to-head.
struct SurrogateStat {
  double fit_s = 0.0;
  double r2 = 0.0;
  double rmse = 0.0;
};

struct WorkloadResult {
  std::string name;
  size_t train_rows = 0;
  int num_trees = 0;
  std::map<std::string, double> stages_s;
  double dstar_rows_per_s = 0.0;
  double fidelity_r2 = 0.0;
  double fidelity_rmse = 0.0;
  // Backend name → head-to-head fit on the shared sampling artifacts.
  std::map<std::string, SurrogateStat> surrogates;
  uint64_t peak_rss_bytes = 0;
  // Store stage: registry cold-start comparison (DESIGN.md §3.17).
  double store_text_load_s = 0.0;
  double store_mmap_load_s = 0.0;
  double store_speedup = 0.0;
  bool store_bit_identical = false;
};

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

// Re-serializes a parsed JsonValue (used to carry gef_loadgen's serving
// workloads into the merged report verbatim).
void SerializeJson(const JsonValue& value, int indent, std::string* out) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  switch (value.type) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += value.boolean ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      *out += FormatDouble(value.number);
      break;
    case JsonValue::Type::kString:
      *out += "\"" + value.str + "\"";
      break;
    case JsonValue::Type::kArray: {
      *out += "[";
      for (size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) *out += ", ";
        SerializeJson(value.array[i], indent, out);
      }
      *out += "]";
      break;
    }
    case JsonValue::Type::kObject: {
      *out += "{\n";
      size_t i = 0;
      for (const auto& [key, member] : value.object) {
        *out += pad + "  \"" + key + "\": ";
        SerializeJson(member, indent + 2, out);
        *out += ++i < value.object.size() ? ",\n" : "\n";
      }
      *out += pad + "}";
      break;
    }
  }
}

// Store stage: packs the trained forest into a binary store, then
// compares registry cold-start to first prediction — the literal
// serving boot paths, ModelRegistry::LoadModel (text parse +
// ContentHash re-serialization + lazy compile forced by the predict)
// vs ModelRegistry::LoadStore (mmap, packed hash, compiled-array
// adoption). Both are repeated and the minimum taken so the reported
// ratio reflects the format, not scheduler noise. Bit-parity is
// checked over the full training set.
void MeasureStore(const Dataset& train, const Forest& forest,
                  WorkloadResult* result) {
  using Clock = std::chrono::steady_clock;
  const std::string text_path = "bench_store_" + result->name + ".txt";
  const std::string store_path = "bench_store_" + result->name + ".gefs";

  if (Status s = SaveForest(forest, text_path); !s.ok()) {
    std::fprintf(stderr, "store stage: cannot save text model: %s\n",
                 s.ToString().c_str());
    return;
  }
  store::StoreBuilder builder;
  if (Status s = builder.AddForest(result->name, forest); !s.ok()) {
    std::fprintf(stderr, "store stage: cannot pack forest: %s\n",
                 s.ToString().c_str());
    return;
  }
  if (Status s = builder.WriteTo(store_path); !s.ok()) {
    std::fprintf(stderr, "store stage: cannot write store: %s\n",
                 s.ToString().c_str());
    return;
  }

  std::vector<double> probe;
  train.GetRowInto(0, &probe);

  constexpr int kReps = 5;
  double text_s = 0.0;
  double mmap_s = 0.0;
  std::vector<double> text_predictions;
  std::vector<double> mmap_predictions;
  bool failed = false;
  for (int rep = 0; rep < kReps && !failed; ++rep) {
    {
      serve::ModelRegistry registry;
      const Clock::time_point start = Clock::now();
      if (Status s = registry.LoadModel(result->name, text_path, "gef");
          !s.ok()) {
        std::fprintf(stderr, "store stage: text load failed: %s\n",
                     s.ToString().c_str());
        failed = true;
        break;
      }
      auto model = registry.Get(result->name);
      model->forest.Predict(probe);  // forces the lazy compile
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (rep == 0 || elapsed < text_s) text_s = elapsed;
      if (rep == 0) text_predictions = model->forest.PredictBatch(train);
    }
    {
      serve::ModelRegistry registry;
      const Clock::time_point start = Clock::now();
      if (Status s = registry.LoadStore(store_path); !s.ok()) {
        std::fprintf(stderr, "store stage: mmap load failed: %s\n",
                     s.ToString().c_str());
        failed = true;
        break;
      }
      auto model = registry.Get(result->name);
      model->forest.Predict(probe);  // already compiled: adopted arrays
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (rep == 0 || elapsed < mmap_s) mmap_s = elapsed;
      if (rep == 0) mmap_predictions = model->forest.PredictBatch(train);
    }
  }
  std::remove(text_path.c_str());
  std::remove(store_path.c_str());
  if (failed) return;

  result->store_text_load_s = text_s;
  result->store_mmap_load_s = mmap_s;
  result->store_speedup = mmap_s > 0.0 ? text_s / mmap_s : 0.0;
  result->store_bit_identical =
      text_predictions.size() == mmap_predictions.size() &&
      std::memcmp(text_predictions.data(), mmap_predictions.data(),
                  text_predictions.size() * sizeof(double)) == 0;
}

// Runs one workload: train a GBDT, run the GEF pipeline, touch the
// SHAP/PDP baselines, then attribute everything from the obs flush.
WorkloadResult RunWorkload(const std::string& name, const Dataset& train,
                           const GbdtConfig& forest_config,
                           const GefConfig& gef_config) {
  WorkloadResult result;
  result.name = name;
  result.train_rows = train.num_rows();
  result.num_trees = forest_config.num_trees;

  obs::Flush();  // start the stage attribution from a clean buffer

  Forest forest = TrainGbdt(train, nullptr, forest_config).forest;
  // Staged rather than ExplainForest so the sampling artifacts survive
  // for the surrogate head-to-head below: both backends must fit on the
  // same domains and the same D*.
  GefSamplingArtifacts artifacts =
      BuildSamplingArtifacts(forest, gef_config);
  std::unique_ptr<GefExplanation> explanation =
      FitExplanation(forest, artifacts, gef_config);
  if (explanation == nullptr) {
    std::fprintf(stderr, "workload %s: GAM fit failed\n", name.c_str());
    return result;
  }

  // Baseline explainers, scaled to a token set so their spans land in
  // the trace without dominating the report's wall-time.
  {
    TreeShapExplainer shap(forest);
    std::vector<double> row;
    for (size_t i = 0; i < std::min<size_t>(10, train.num_rows()); ++i) {
      train.GetRowInto(i, &row);
      shap.Explain(row);
    }
    int feature = explanation->selected_features.front();
    PartialDependence1d(forest, train, feature,
                        FeatureGrid(train, feature, 15));
  }

  FidelityReport fidelity =
      EvaluateFidelity(*explanation, forest, explanation->dstar_test);
  result.fidelity_r2 = fidelity.r2;
  result.fidelity_rmse = fidelity.rmse;

  obs::Aggregates aggregates = obs::Flush();
  for (const auto& [key, span] : kStageSpans) {
    result.stages_s[key] = aggregates.SpanSeconds(span);
  }
  double label_s = aggregates.SpanSeconds("gef.dstar_label");
  double rows = aggregates.Counter("gef.dstar_rows_labeled");
  result.dstar_rows_per_s = label_s > 0.0 ? rows / label_s : 0.0;
  result.peak_rss_bytes = aggregates.peak_rss_bytes != 0
                              ? aggregates.peak_rss_bytes
                              : obs::PeakRssBytes();
  // After the flush so the store loads don't skew stage attribution.
  MeasureStore(train, forest, &result);

  // Two-backend fidelity head-to-head (DESIGN.md §3.19). spline_gam
  // reuses the pipeline fit — same fidelity, gam_fit stage wall-time —
  // while boosted_fanova is fitted fresh on the identical artifacts.
  // Runs after the flush so its spans don't pollute stage attribution;
  // its fit_s includes the (cheap, deterministic) component re-selection
  // FitExplanation performs, which is shared overhead, not model cost.
  result.surrogates["spline_gam"] = {result.stages_s.at("gam_fit"),
                                     result.fidelity_r2,
                                     result.fidelity_rmse};
  {
    using Clock = std::chrono::steady_clock;
    GefConfig fanova_config = gef_config;
    fanova_config.surrogate_backend = "boosted_fanova";
    const Clock::time_point start = Clock::now();
    std::unique_ptr<GefExplanation> fanova =
        FitExplanation(forest, artifacts, fanova_config);
    const double fit_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (fanova == nullptr) {
      std::fprintf(stderr, "workload %s: boosted_fanova fit failed\n",
                   name.c_str());
    } else {
      FidelityReport fanova_fidelity =
          EvaluateFidelity(*fanova, forest, fanova->dstar_test);
      result.surrogates["boosted_fanova"] = {fit_s, fanova_fidelity.r2,
                                             fanova_fidelity.rmse};
    }
  }
  return result;
}

void WriteReport(const std::string& path,
                 const std::vector<WorkloadResult>& workloads, bool smoke,
                 const std::vector<JsonValue>& serving_workloads) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"schema\": \"" << kSchema << "\",\n";
  out << "  \"pr\": \"" << kPrLabel << "\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"num_threads\": " << NumThreads() << ",\n";
  out << "  \"workloads\": [\n";
  const size_t total = workloads.size() + serving_workloads.size();
  for (size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadResult& r = workloads[w];
    out << "    {\n";
    out << "      \"name\": \"" << r.name << "\",\n";
    out << "      \"train_rows\": " << r.train_rows << ",\n";
    out << "      \"num_trees\": " << r.num_trees << ",\n";
    out << "      \"stages_s\": {";
    bool first = true;
    for (const auto& [key, seconds] : r.stages_s) {
      out << (first ? "" : ", ") << "\"" << key
          << "\": " << FormatDouble(seconds);
      first = false;
    }
    out << "},\n";
    out << "      \"dstar_rows_per_s\": "
        << FormatDouble(r.dstar_rows_per_s) << ",\n";
    out << "      \"fidelity\": {\"r2\": " << FormatDouble(r.fidelity_r2)
        << ", \"rmse\": " << FormatDouble(r.fidelity_rmse) << "},\n";
    out << "      \"surrogates\": {";
    bool sfirst = true;
    for (const auto& [backend, stat] : r.surrogates) {
      out << (sfirst ? "" : ", ") << "\"" << backend
          << "\": {\"fit_s\": " << FormatDouble(stat.fit_s)
          << ", \"r2\": " << FormatDouble(stat.r2)
          << ", \"rmse\": " << FormatDouble(stat.rmse) << "}";
      sfirst = false;
    }
    out << "},\n";
    out << "      \"store\": {\"text_load_s\": "
        << FormatDouble(r.store_text_load_s)
        << ", \"mmap_load_s\": " << FormatDouble(r.store_mmap_load_s)
        << ", \"speedup\": " << FormatDouble(r.store_speedup)
        << ", \"bit_identical\": "
        << (r.store_bit_identical ? "true" : "false") << "},\n";
    out << "      \"peak_rss_bytes\": " << r.peak_rss_bytes << "\n";
    out << "    }" << (w + 1 < total ? "," : "") << "\n";
  }
  for (size_t w = 0; w < serving_workloads.size(); ++w) {
    std::string rendered;
    SerializeJson(serving_workloads[w], 4, &rendered);
    out << "    " << rendered
        << (workloads.size() + w + 1 < total ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

// Schema check for --validate. Returns a list of problems (empty = ok).
std::vector<std::string> ValidateReport(const JsonValue& root) {
  std::vector<std::string> problems;
  auto require = [&problems](bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
    return ok;
  };
  if (!require(root.type == JsonValue::Type::kObject,
               "root must be an object")) {
    return problems;
  }
  auto field = [&root](const std::string& key) -> const JsonValue* {
    auto it = root.object.find(key);
    return it == root.object.end() ? nullptr : &it->second;
  };
  const JsonValue* schema = field("schema");
  require(schema != nullptr && schema->type == JsonValue::Type::kString &&
              schema->str == kSchema,
          std::string("schema must be \"") + kSchema + "\"");
  require(field("pr") != nullptr &&
              field("pr")->type == JsonValue::Type::kString,
          "pr must be a string");
  require(field("num_threads") != nullptr &&
              field("num_threads")->type == JsonValue::Type::kNumber,
          "num_threads must be a number");
  const JsonValue* workloads = field("workloads");
  if (!require(workloads != nullptr &&
                   workloads->type == JsonValue::Type::kArray &&
                   !workloads->array.empty(),
               "workloads must be a non-empty array")) {
    return problems;
  }
  for (const JsonValue& w : workloads->array) {
    if (!require(w.type == JsonValue::Type::kObject,
                 "workload must be an object")) {
      continue;
    }
    auto wfield = [&w](const std::string& key) -> const JsonValue* {
      auto it = w.object.find(key);
      return it == w.object.end() ? nullptr : &it->second;
    };
    const JsonValue* wname = wfield("name");
    std::string label =
        wname != nullptr && wname->type == JsonValue::Type::kString
            ? wname->str
            : "<unnamed>";
    require(wname != nullptr, "workload missing name");
    const JsonValue* serving = wfield("serving");
    if (serving != nullptr) {
      // Serving workload (gef_loadgen): the serving section replaces
      // the pipeline stage/fidelity requirements.
      if (!require(serving->type == JsonValue::Type::kObject,
                   label + ": serving must be an object")) {
        continue;
      }
      auto sfield = [serving](const std::string& key) -> const JsonValue* {
        auto it = serving->object.find(key);
        return it == serving->object.end() ? nullptr : &it->second;
      };
      const JsonValue* endpoint = sfield("endpoint");
      require(endpoint != nullptr &&
                  endpoint->type == JsonValue::Type::kString,
              label + ": serving.endpoint must be a string");
      for (const char* key : kServingNumberKeys) {
        const JsonValue* v = sfield(key);
        require(v != nullptr && v->type == JsonValue::Type::kNumber &&
                    std::isfinite(v->number) && v->number >= 0.0,
                label + ": serving." + key +
                    " must be a non-negative number");
      }
      continue;
    }
    for (const char* key : {"train_rows", "num_trees", "dstar_rows_per_s",
                            "peak_rss_bytes"}) {
      const JsonValue* v = wfield(key);
      require(v != nullptr && v->type == JsonValue::Type::kNumber,
              label + ": " + key + " must be a number");
    }
    const JsonValue* stages = wfield("stages_s");
    if (require(stages != nullptr &&
                    stages->type == JsonValue::Type::kObject,
                label + ": stages_s must be an object")) {
      for (const auto& [key, span] : kStageSpans) {
        (void)span;
        auto it = stages->object.find(key);
        require(it != stages->object.end() &&
                    it->second.type == JsonValue::Type::kNumber &&
                    it->second.number >= 0.0,
                label + ": stages_s." + key +
                    " must be a non-negative number");
      }
    }
    const JsonValue* fidelity = wfield("fidelity");
    if (require(fidelity != nullptr &&
                    fidelity->type == JsonValue::Type::kObject,
                label + ": fidelity must be an object")) {
      for (const char* key : {"r2", "rmse"}) {
        auto it = fidelity->object.find(key);
        require(it != fidelity->object.end() &&
                    it->second.type == JsonValue::Type::kNumber &&
                    std::isfinite(it->second.number),
                label + ": fidelity." + key + " must be a finite number");
      }
    }
    const JsonValue* surrogates = wfield("surrogates");
    if (require(surrogates != nullptr &&
                    surrogates->type == JsonValue::Type::kObject,
                label + ": surrogates must be an object")) {
      for (const char* backend : kHeadToHeadBackends) {
        auto bit = surrogates->object.find(backend);
        if (!require(bit != surrogates->object.end() &&
                         bit->second.type == JsonValue::Type::kObject,
                     label + ": surrogates." + backend +
                         " must be an object")) {
          continue;
        }
        for (const char* key : {"fit_s", "r2", "rmse"}) {
          auto it = bit->second.object.find(key);
          require(it != bit->second.object.end() &&
                      it->second.type == JsonValue::Type::kNumber &&
                      std::isfinite(it->second.number),
                  label + ": surrogates." + backend + "." + key +
                      " must be a finite number");
        }
      }
    }
    const JsonValue* store = wfield("store");
    if (require(store != nullptr &&
                    store->type == JsonValue::Type::kObject,
                label + ": store must be an object")) {
      for (const char* key : {"text_load_s", "mmap_load_s", "speedup"}) {
        auto it = store->object.find(key);
        require(it != store->object.end() &&
                    it->second.type == JsonValue::Type::kNumber &&
                    std::isfinite(it->second.number) &&
                    it->second.number >= 0.0,
                label + ": store." + key +
                    " must be a non-negative number");
      }
      auto bit = store->object.find("bit_identical");
      require(bit != store->object.end() &&
                  bit->second.type == JsonValue::Type::kBool,
              label + ": store.bit_identical must be a bool");
    }
  }
  return problems;
}

bool LoadJsonFile(const std::string& path, JsonValue* root) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!JsonParser(buffer.str()).Parse(root, &error)) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

int Validate(const std::string& path) {
  JsonValue root;
  if (!LoadJsonFile(path, &root)) return 1;
  std::vector<std::string> problems = ValidateReport(root);
  for (const std::string& problem : problems) {
    std::fprintf(stderr, "%s: schema violation: %s\n", path.c_str(),
                 problem.c_str());
  }
  if (!problems.empty()) return 1;
  std::printf("%s: valid %s report\n", path.c_str(), kSchema);
  return 0;
}

// ---------------------------------------------------------------------
// Baseline diff (--validate X --baseline Y). Wall-time deltas are
// informational (machines differ); fidelity is a hard gate.

/// Maximum |Δ| either fidelity statistic (R², RMSE) may move between a
/// baseline and a current report before the diff fails. Wide enough to
/// absorb libm / summation-order differences across machines, far too
/// tight for a real modeling regression to hide in.
constexpr double kFidelityDriftTol = 0.02;

const JsonValue* FindWorkload(const JsonValue& root,
                              const std::string& name) {
  auto it = root.object.find("workloads");
  if (it == root.object.end()) return nullptr;
  for (const JsonValue& w : it->second.array) {
    auto n = w.object.find("name");
    if (n != w.object.end() && n->second.str == name) return &w;
  }
  return nullptr;
}

double NumberAt(const JsonValue& obj, const std::string& key,
                double fallback = 0.0) {
  auto it = obj.object.find(key);
  return it == obj.object.end() ? fallback : it->second.number;
}

int DiffAgainstBaseline(const std::string& current_path,
                        const std::string& baseline_path) {
  JsonValue current, baseline;
  if (!LoadJsonFile(current_path, &current) ||
      !LoadJsonFile(baseline_path, &baseline)) {
    return 1;
  }
  // The baseline only needs to parse — older reports may predate schema
  // additions — but the current report was already schema-validated.
  int failures = 0;
  std::printf("\n## Bench diff: %s vs %s\n\n", current_path.c_str(),
              baseline_path.c_str());
  std::printf("| workload | stage | baseline (s) | current (s) | delta |\n");
  std::printf("|---|---|---:|---:|---:|\n");
  auto wit = current.object.find("workloads");
  for (const JsonValue& w : wit->second.array) {
    const std::string name = w.object.at("name").str;
    const JsonValue* base = FindWorkload(baseline, name);
    if (base == nullptr) {
      std::printf("| %s | _(not in baseline)_ | | | |\n", name.c_str());
      continue;
    }
    auto cur_serving = w.object.find("serving");
    if (cur_serving != w.object.end()) {
      // Serving workload: wall-clock stages don't exist; report the
      // throughput/tail trajectory instead (informational, like the
      // stage table — machines differ).
      auto base_serving = base->object.find("serving");
      if (base_serving == base->object.end()) {
        std::printf("| %s | _(no serving baseline)_ | | | |\n",
                    name.c_str());
        continue;
      }
      for (const char* key : {"qps", "latency_p50_ms", "latency_p99_ms"}) {
        double cur_v = NumberAt(cur_serving->second, key);
        double base_v = NumberAt(base_serving->second, key);
        double ratio = base_v > 0.0 ? cur_v / base_v : 0.0;
        std::printf(
            "| %s | %s | %.4f | %.4f | %+.1f%% (%.2fx) |\n", name.c_str(),
            key, base_v, cur_v,
            base_v > 0.0 ? 100.0 * (cur_v - base_v) / base_v : 0.0, ratio);
      }
      continue;
    }
    const JsonValue& cur_stages = w.object.at("stages_s");
    auto bstages = base->object.find("stages_s");
    for (const auto& [key, span] : kStageSpans) {
      (void)span;
      double cur_s = NumberAt(cur_stages, key);
      double base_s = bstages == base->object.end()
                          ? 0.0
                          : NumberAt(bstages->second, key);
      double ratio = base_s > 0.0 ? cur_s / base_s : 0.0;
      std::printf("| %s | %s | %.4f | %.4f | %+.1f%% (%.2fx) |\n",
                  name.c_str(), key, base_s, cur_s,
                  base_s > 0.0 ? 100.0 * (cur_s - base_s) / base_s : 0.0,
                  ratio);
    }
    // Throughput trajectory for the compiled-inference hot path
    // (rows/s, not seconds — higher is better).
    {
      double cur_v = NumberAt(w, "dstar_rows_per_s");
      double base_v = NumberAt(*base, "dstar_rows_per_s");
      std::printf("| %s | dstar_rows_per_s | %.0f | %.0f | %+.1f%% "
                  "(%.2fx) |\n",
                  name.c_str(), base_v, cur_v,
                  base_v > 0.0 ? 100.0 * (cur_v - base_v) / base_v : 0.0,
                  base_v > 0.0 ? cur_v / base_v : 0.0);
    }
    // Store cold-start trajectory (baselines that predate the store
    // report 0 — informational only, like the stage table).
    {
      auto cur_store = w.object.find("store");
      if (cur_store != w.object.end()) {
        auto base_store = base->object.find("store");
        double cur_v = NumberAt(cur_store->second, "speedup");
        double base_v = base_store == base->object.end()
                            ? 0.0
                            : NumberAt(base_store->second, "speedup");
        std::printf("| %s | store.speedup | %.1fx | %.1fx | |\n",
                    name.c_str(), base_v, cur_v);
      }
    }
  }
  std::printf("\n### Fidelity gate (tolerance %.3g)\n\n", kFidelityDriftTol);
  for (const JsonValue& w : wit->second.array) {
    const std::string name = w.object.at("name").str;
    const JsonValue* base = FindWorkload(baseline, name);
    if (base == nullptr) continue;
    auto cfid = w.object.find("fidelity");
    auto bfid = base->object.find("fidelity");
    if (cfid == w.object.end() || bfid == base->object.end()) continue;
    for (const char* key : {"r2", "rmse"}) {
      double cur_v = NumberAt(cfid->second, key);
      double base_v = NumberAt(bfid->second, key);
      double drift = std::fabs(cur_v - base_v);
      bool ok = drift <= kFidelityDriftTol;
      if (!ok) ++failures;
      std::printf("- %s %s: baseline %.6g, current %.6g, drift %.3g — %s\n",
                  name.c_str(), key, base_v, cur_v, drift,
                  ok ? "OK" : "FAIL");
    }
    // Head-to-head gate: every backend present in BOTH reports must hold
    // its fidelity. Baselines that predate the surrogates object (PR9
    // and earlier) skip this silently — the plain fidelity gate above
    // still covers the default backend there.
    auto csur = w.object.find("surrogates");
    auto bsur = base->object.find("surrogates");
    if (csur == w.object.end() || bsur == base->object.end()) continue;
    for (const auto& [backend, stat] : csur->second.object) {
      auto bstat = bsur->second.object.find(backend);
      if (bstat == bsur->second.object.end()) continue;
      for (const char* key : {"r2", "rmse"}) {
        double cur_v = NumberAt(stat, key);
        double base_v = NumberAt(bstat->second, key);
        double drift = std::fabs(cur_v - base_v);
        bool ok = drift <= kFidelityDriftTol;
        if (!ok) ++failures;
        std::printf(
            "- %s %s.%s: baseline %.6g, current %.6g, drift %.3g — %s\n",
            name.c_str(), backend.c_str(), key, base_v, cur_v, drift,
            ok ? "OK" : "FAIL");
      }
    }
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "\n%d fidelity drift(s) exceed tolerance %.3g: the perf "
                 "change altered the fitted models\n",
                 failures, kFidelityDriftTol);
    return 1;
  }
  std::printf("\nfidelity unchanged within tolerance\n");
  return 0;
}

int Run(const Flags& flags) {
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_PR10.json");
  const std::string workload = flags.GetString("workload", "all");
  const std::string serving_paths = flags.GetString("serving", "");

  // Serving workloads come pre-measured from gef_loadgen --out; merge
  // them in verbatim (schema-checked) rather than re-running the load.
  // `--serving` takes a comma-separated list so one report can carry
  // several runs (batching on vs off, predict vs explain).
  std::vector<JsonValue> serving_workloads;
  size_t path_begin = 0;
  while (path_begin <= serving_paths.size() && !serving_paths.empty()) {
    size_t comma = serving_paths.find(',', path_begin);
    if (comma == std::string::npos) comma = serving_paths.size();
    const std::string serving_path =
        serving_paths.substr(path_begin, comma - path_begin);
    path_begin = comma + 1;
    if (serving_path.empty()) continue;
    JsonValue serving_root;
    if (!LoadJsonFile(serving_path, &serving_root)) return 1;
    std::vector<std::string> problems = ValidateReport(serving_root);
    for (const std::string& problem : problems) {
      std::fprintf(stderr, "%s: schema violation: %s\n",
                   serving_path.c_str(), problem.c_str());
    }
    if (!problems.empty()) return 1;
    for (JsonValue& w : serving_root.object.at("workloads").array) {
      if (w.object.find("serving") == w.object.end()) {
        std::fprintf(stderr,
                     "%s: workload without a serving section; merge "
                     "only loadgen reports\n",
                     serving_path.c_str());
        return 1;
      }
      serving_workloads.push_back(std::move(w));
    }
  }

  // Stage attribution needs the obs layer on; honour GEF_TRACE when the
  // environment set it, otherwise collect in memory only.
  if (!obs::Enabled()) obs::Enable("");

  std::vector<WorkloadResult> results;

  if (workload == "all" || workload == "synthetic") {
    Rng rng(42);
    Dataset train = MakeGDoublePrimeDataset(smoke ? 800 : 3000,
                                            {{0, 1}, {2, 3}}, &rng);
    GbdtConfig forest_config;
    forest_config.num_trees = smoke ? 30 : 120;
    forest_config.num_leaves = 16;
    forest_config.learning_rate = 0.1;
    forest_config.min_samples_leaf = 10;
    GefConfig gef_config;
    gef_config.num_univariate = 5;
    gef_config.num_bivariate = 2;
    gef_config.num_samples = smoke ? 3000 : 20000;
    gef_config.k = smoke ? 24 : 64;
    gef_config.spline_basis = smoke ? 10 : 16;
    results.push_back(
        RunWorkload("synthetic", train, forest_config, gef_config));
  }

  if (workload == "all" || workload == "census") {
    Rng rng(43);
    Dataset train = MakeCensusDatasetEncoded(smoke ? 1000 : 4000, &rng);
    GbdtConfig forest_config;
    forest_config.objective = Objective::kBinaryClassification;
    forest_config.num_trees = smoke ? 25 : 100;
    forest_config.num_leaves = smoke ? 16 : 32;
    forest_config.learning_rate = 0.1;
    forest_config.min_samples_leaf = 20;
    GefConfig gef_config;
    gef_config.num_univariate = 5;
    gef_config.num_bivariate = 1;
    gef_config.num_samples = smoke ? 3000 : 20000;
    gef_config.k = smoke ? 24 : 64;
    gef_config.spline_basis = smoke ? 10 : 16;
    results.push_back(
        RunWorkload("census", train, forest_config, gef_config));
  }

  if (results.empty()) {
    std::fprintf(stderr,
                 "unknown --workload '%s' (all, synthetic, census)\n",
                 workload.c_str());
    return 1;
  }

  WriteReport(out_path, results, smoke, serving_workloads);
  const size_t total = results.size() + serving_workloads.size();
  std::printf("wrote %s (%zu workload%s)\n", out_path.c_str(), total,
              total == 1 ? "" : "s");
  const std::string trace = obs::TracePath();
  if (!trace.empty()) {
    std::printf("trace JSONL appended to %s\n", trace.c_str());
  }
  for (const WorkloadResult& r : results) {
    std::printf("  %-10s train %.3fs  dstar %.3fs (%.0f rows/s)  "
                "gam %.3fs  R2 %.4f  peak RSS %.1f MB\n",
                r.name.c_str(), r.stages_s.at("forest_train"),
                r.stages_s.at("dstar_draw") + r.stages_s.at("dstar_label"),
                r.dstar_rows_per_s, r.stages_s.at("gam_fit"),
                r.fidelity_r2,
                static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0));
    std::printf("  %-10s store cold-start: text %.2fms, mmap %.2fms "
                "(%.1fx), predictions %s\n",
                "", r.store_text_load_s * 1e3, r.store_mmap_load_s * 1e3,
                r.store_speedup,
                r.store_bit_identical ? "bit-identical" : "DIVERGED");
    for (const auto& [backend, stat] : r.surrogates) {
      std::printf("  %-10s surrogate %-14s fit %.3fs  R2 %.4f  "
                  "RMSE %.5f\n",
                  "", backend.c_str(), stat.fit_s, stat.r2, stat.rmse);
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  StatusOr<Flags> parsed = Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().message().c_str());
    return 1;
  }
  const Flags& flags = parsed.value();
  std::string validate_path = flags.GetString("validate", "");
  std::string baseline_path = flags.GetString("baseline", "");
  const bool smoke_read = flags.GetBool("smoke", false);
  (void)smoke_read;
  int code = 0;
  if (!validate_path.empty()) {
    code = Validate(validate_path);
    if (code == 0 && !baseline_path.empty()) {
      code = DiffAgainstBaseline(validate_path, baseline_path);
    }
  } else {
    code = Run(flags);
  }
  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 1;
  }
  std::vector<std::string> unread = flags.UnreadFlags();
  if (!unread.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", unread.front().c_str());
    return 1;
  }
  return code;
}

}  // namespace
}  // namespace gef

int main(int argc, char** argv) { return gef::Main(argc, argv); }
