// gef_store — pack, inspect and verify binary model stores.
//
// The store (src/store/, DESIGN.md §3.17) is the mmap'd artifact
// gef_serve --store boots from: forests with their compiled traversal
// arrays plus cached surrogates, checksummed per section.
//
// Usage:
//   gef_store pack --out store.gefs
//             --model name=forest.txt[,name2=other.txt]
//             [--format gef|lightgbm]
//             [--surrogate name=explanation.txt[,...]]
//             [--summary name=summary.txt[,...]]
//   gef_store inspect store.gefs
//   gef_store verify store.gefs
//
// `verify` revalidates everything a reader would trust: header, section
// table, every payload checksum, and a full structural load of every
// forest (node reconstruction + ValidateForest + compiled-array bounds
// sweep). Exit codes: 0 success, 1 bad usage, 2 failure.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "forest/lightgbm_import.h"
#include "forest/serialization.h"
#include "store/store_builder.h"
#include "store/store_reader.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/shutdown.h"
#include "util/string_util.h"

namespace gef {
namespace {

/// Splits "name=path[,name=path...]" into pairs.
bool ParseNamedPaths(const std::string& arg,
                     std::vector<std::pair<std::string, std::string>>* out) {
  for (const std::string& item : Split(arg, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return false;
    }
    out->emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return !out->empty();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError("cannot read " + path);
  }
  return std::move(buffer).str();
}

int Pack(const Flags& flags) {
  const std::string out_path = flags.GetString("out", "");
  const std::string model_arg = flags.GetString("model", "");
  const std::string format = flags.GetString("format", "gef");
  const std::string surrogate_arg = flags.GetString("surrogate", "");
  const std::string summary_arg = flags.GetString("summary", "");
  if (out_path.empty() || model_arg.empty()) {
    std::fprintf(stderr,
                 "usage: gef_store pack --out <store> --model "
                 "name=forest.txt[,...] [--format gef|lightgbm] "
                 "[--surrogate name=file[,...]] [--summary name=file[,...]]\n");
    return 1;
  }
  std::vector<std::pair<std::string, std::string>> models;
  if (!ParseNamedPaths(model_arg, &models)) {
    std::fprintf(stderr, "--model wants name=path[,name=path...]\n");
    return 1;
  }
  std::vector<std::pair<std::string, std::string>> surrogates;
  if (!surrogate_arg.empty() &&
      !ParseNamedPaths(surrogate_arg, &surrogates)) {
    std::fprintf(stderr, "--surrogate wants name=path[,name=path...]\n");
    return 1;
  }
  std::vector<std::pair<std::string, std::string>> summaries;
  if (!summary_arg.empty() && !ParseNamedPaths(summary_arg, &summaries)) {
    std::fprintf(stderr, "--summary wants name=path[,name=path...]\n");
    return 1;
  }

  store::StoreBuilder builder;
  for (const auto& [name, path] : models) {
    StatusOr<Forest> forest = format == "lightgbm"
                                  ? LoadLightGbmModel(path)
                                  : LoadForest(path);
    if (!forest.ok()) {
      std::fprintf(stderr, "cannot load forest %s: %s\n", path.c_str(),
                   forest.status().ToString().c_str());
      return 2;
    }
    if (Status s = builder.AddForest(name, forest.value()); !s.ok()) {
      std::fprintf(stderr, "cannot pack forest '%s': %s\n", name.c_str(),
                   s.ToString().c_str());
      return 2;
    }
    std::printf("packed forest '%s' from %s (hash %s, %zu trees)\n",
                name.c_str(), path.c_str(),
                HashToHex(forest->ContentHash()).c_str(),
                forest->num_trees());
  }
  for (const auto& [name, path] : surrogates) {
    StatusOr<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "cannot read surrogate %s: %s\n", path.c_str(),
                   text.status().ToString().c_str());
      return 2;
    }
    if (Status s = builder.AddSurrogate(name, text.value()); !s.ok()) {
      std::fprintf(stderr, "cannot pack surrogate '%s': %s\n",
                   name.c_str(), s.ToString().c_str());
      return 2;
    }
    std::printf("packed surrogate '%s' from %s\n", name.c_str(),
                path.c_str());
  }
  for (const auto& [name, path] : summaries) {
    StatusOr<std::string> text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "cannot read summary %s: %s\n", path.c_str(),
                   text.status().ToString().c_str());
      return 2;
    }
    if (Status s = builder.AddDatasetSummary(name, text.value()); !s.ok()) {
      std::fprintf(stderr, "cannot pack summary '%s': %s\n", name.c_str(),
                   s.ToString().c_str());
      return 2;
    }
  }

  if (Status s = builder.WriteTo(out_path); !s.ok()) {
    std::fprintf(stderr, "cannot write store: %s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s (%zu sections)\n", out_path.c_str(),
              builder.num_sections());
  return 0;
}

int Inspect(const std::string& path) {
  auto reader = store::StoreReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 2;
  }
  std::printf("%s: format version %u, %zu sections, %zu bytes mapped\n",
              path.c_str(), reader->format_version(),
              reader->sections().size(), reader->mapped_bytes());
  for (const auto& section : reader->sections()) {
    std::printf("  %-15s %-15s %10llu bytes  model %s  artifact %s\n",
                store::SectionKindName(section.kind),
                section.name.c_str(),
                static_cast<unsigned long long>(section.payload_bytes),
                HashToHex(section.model_hash).c_str(),
                HashToHex(section.artifact_hash).c_str());
  }
  return 0;
}

int Verify(const std::string& path) {
  auto reader = store::StoreReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "verify FAILED: %s\n",
                 reader.status().ToString().c_str());
    return 2;
  }
  if (Status s = reader->VerifyAll(); !s.ok()) {
    std::fprintf(stderr, "verify FAILED: %s\n", s.ToString().c_str());
    return 2;
  }
  // Structural pass: everything a serving load would trust.
  for (const std::string& name : reader->ForestNames()) {
    StatusOr<Forest> forest = reader->LoadForest(name);
    if (!forest.ok()) {
      std::fprintf(stderr, "verify FAILED: %s\n",
                   forest.status().ToString().c_str());
      return 2;
    }
    std::printf("forest '%s' OK (hash %s, %zu trees)\n", name.c_str(),
                HashToHex(reader->ForestHash(name).value()).c_str(),
                forest->num_trees());
  }
  std::printf("store OK: %zu sections, all checksums match\n",
              reader->sections().size());
  return 0;
}

int Run(int argc, const char* const* argv) {
  InstallShutdownHandler();

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const std::vector<std::string>& positional = flags.positional();
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: gef_store pack|inspect|verify ...\n"
                 "see the header of tools/gef_store.cc\n");
    return 1;
  }
  const std::string& command = positional[0];
  if (command == "pack") {
    const int code = Pack(flags);
    if (code != 0) return code;
  } else if (command == "inspect" || command == "verify") {
    if (positional.size() != 2) {
      std::fprintf(stderr, "usage: gef_store %s <store file>\n",
                   command.c_str());
      return 1;
    }
    const int code = command == "inspect" ? Inspect(positional[1])
                                          : Verify(positional[1]);
    if (code != 0) return code;
  } else {
    std::fprintf(stderr, "unknown command '%s' (pack|inspect|verify)\n",
                 command.c_str());
    return 1;
  }

  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 1;
  }
  std::vector<std::string> unread = flags.UnreadFlags();
  if (!unread.empty()) {
    std::fprintf(stderr, "unknown flag(s): --%s\n",
                 Join(unread, ", --").c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gef

int main(int argc, char** argv) { return gef::Run(argc, argv); }
