// gef_lint: fast token-level checker for repo-specific rules that
// compilers and clang-tidy do not enforce. Registered as a ctest so the
// gate runs in tier-1 (`ctest -R gef_lint`). Exits 0 when the tree is
// clean, 1 with one `file:line: [rule] message` diagnostic per finding.
//
// Rules (see DESIGN.md §3.11):
//   gef-raw-rand        `rand(`, `srand(` or `std::random_device` anywhere
//                       outside src/stats/rng.* — all randomness must flow
//                       through the seeded, reproducible Rng.
//   gef-cout            `std::cout` inside src/ — library code reports via
//                       Status or writes caller-supplied streams; stdout
//                       belongs to the tools.
//   gef-naked-new       `new` expression inside src/ without an owning
//                       container/smart pointer. Deliberate leaks (fork
//                       safety, leaky singletons) carry a
//                       `// NOLINT(gef-naked-new)` comment on the line.
//   gef-float-narrow    `float x = <double literal>` inside src/ — the
//                       numeric core is double end to end; a stray float
//                       literal silently halves precision.
//   gef-todo-owner      `TODO` comment without an owner: must be written
//                       `TODO(owner): ...` so stale notes are traceable.
//
// The scanner strips comments and string/character literals before
// applying the code rules (so `"new"` in a string never fires) and keeps
// the comment text for the TODO rule. A line whose raw text contains
// `NOLINT` is exempt from all code rules on that line.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct FileText {
  // Per source line: code with comments + string/char literals blanked
  // to spaces (column positions preserved), the comment text on that
  // line (if any), and the raw line.
  std::vector<std::string> code;
  std::vector<std::string> comments;
  std::vector<std::string> raw;
};

// Single-pass lexer: tracks block comments and literals across lines.
FileText Lex(const std::string& text) {
  FileText out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string code_line, comment_line, raw_line;

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    out.raw.push_back(raw_line);
    code_line.clear();
    comment_line.clear();
    raw_line.clear();
    if (state == State::kLineComment) state = State::kCode;
  };

  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    char c = text[i];
    if (c == '\n') {
      flush_line();
      continue;
    }
    raw_line += c;
    char next = i + 1 < n ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          raw_line += next;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          raw_line += next;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw strings are not used in this tree; treat `R"` like a
          // plain literal opener (good enough for a gate, and the lint
          // source itself avoids them).
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          raw_line += next;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          raw_line += next;
          code_line += "  ";
          ++i;
        } else if (c == quote) {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  if (!raw_line.empty() || !code_line.empty()) flush_line();
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Word-boundary search for `ident` in blanked code text.
bool HasIdent(const std::string& line, const std::string& ident) {
  size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + ident.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// `rand(` / `srand(` with the parenthesis (so `operator_rand` or a
// member named rand_ never fires).
bool HasRandCall(const std::string& line) {
  for (const char* name : {"rand", "srand"}) {
    size_t pos = 0;
    std::string ident(name);
    while ((pos = line.find(ident, pos)) != std::string::npos) {
      bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      size_t end = pos + ident.size();
      size_t after = end;
      while (after < line.size() && line[after] == ' ') ++after;
      if (left_ok && after < line.size() && line[after] == '(') {
        return true;
      }
      pos = end;
    }
  }
  return false;
}

// `float <ident> = <literal>` / `float <ident>{<literal>}` where the
// literal is a double (has '.' or exponent, no f/F suffix).
bool HasFloatNarrowing(const std::string& line) {
  size_t pos = 0;
  while ((pos = line.find("float", pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t i = pos + 5;
    pos = i;
    if (!left_ok || (i < line.size() && IsIdentChar(line[i]))) continue;
    while (i < line.size() && line[i] == ' ') ++i;
    size_t ident_start = i;
    while (i < line.size() && IsIdentChar(line[i])) ++i;
    if (i == ident_start) continue;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size() || (line[i] != '=' && line[i] != '{')) continue;
    ++i;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '-') ++i;
    size_t lit_start = i;
    bool has_dot = false, has_exp = false, is_hex = false;
    if (i + 1 < line.size() && line[i] == '0' &&
        (line[i + 1] == 'x' || line[i + 1] == 'X')) {
      is_hex = true;
    }
    while (i < line.size()) {
      char c = line[i];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '\'') {
        ++i;
      } else if (c == '.') {
        has_dot = true;
        ++i;
      } else if (!is_hex && (c == 'e' || c == 'E')) {
        has_exp = true;
        ++i;
        if (i < line.size() && (line[i] == '+' || line[i] == '-')) ++i;
      } else {
        break;
      }
    }
    if (i == lit_start || is_hex || (!has_dot && !has_exp)) continue;
    bool has_f_suffix =
        i < line.size() && (line[i] == 'f' || line[i] == 'F');
    if (!has_f_suffix) return true;
  }
  return false;
}

// `TODO` in a comment must be `TODO(<owner>)`.
bool HasOwnerlessTodo(const std::string& comment) {
  size_t pos = 0;
  while ((pos = comment.find("TODO", pos)) != std::string::npos) {
    size_t i = pos + 4;
    pos = i;
    if (i >= comment.size() || comment[i] != '(') return true;
    size_t close = comment.find(')', i);
    if (close == std::string::npos || close == i + 1) return true;
  }
  return false;
}

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

bool UnderDir(const fs::path& file, const char* dir) {
  for (const fs::path& part : file) {
    if (part == dir) return true;
  }
  return false;
}

void LintFile(const fs::path& path, std::vector<Violation>* out) {
  const std::string fname = path.filename().string();
  // The RNG wrapper is the one sanctioned home of raw randomness, and
  // this checker's own source spells the rule names out.
  const bool rng_home = fname == "rng.h" || fname == "rng.cc";
  const bool self = fname == "gef_lint.cc";
  const bool in_src = UnderDir(path, "src");

  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  FileText text = Lex(buffer.str());

  for (size_t l = 0; l < text.code.size(); ++l) {
    const std::string& code = text.code[l];
    const std::string& comment = text.comments[l];
    const size_t line_no = l + 1;
    const bool nolint =
        text.raw[l].find("NOLINT") != std::string::npos;

    if (self) continue;  // this file spells every rule out verbatim
    if (HasOwnerlessTodo(comment)) {
      out->push_back({path.string(), line_no, "gef-todo-owner",
                      "TODO without an owner; write TODO(name): ..."});
    }
    if (nolint) continue;

    if (!rng_home &&
        (HasRandCall(code) || HasIdent(code, "random_device"))) {
      out->push_back({path.string(), line_no, "gef-raw-rand",
                      "raw randomness outside src/stats/rng; use Rng"});
    }
    if (in_src && code.find("std::cout") != std::string::npos) {
      out->push_back({path.string(), line_no, "gef-cout",
                      "std::cout in library code; return Status or take "
                      "an ostream"});
    }
    if (in_src && HasIdent(code, "new")) {
      out->push_back({path.string(), line_no, "gef-naked-new",
                      "naked new in library code; use containers or "
                      "std::make_unique, or annotate a deliberate leak "
                      "with NOLINT(gef-naked-new)"});
    }
    if (in_src && HasFloatNarrowing(code)) {
      out->push_back({path.string(), line_no, "gef-float-narrow",
                      "double literal narrowed to float; the numeric "
                      "core is double end to end"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <repo-root> [more-roots...]\n",
                 argv[0]);
    return 2;
  }

  std::vector<fs::path> files;
  for (int a = 1; a < argc; ++a) {
    const fs::path root(argv[a]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "gef_lint: no such path: %s\n", argv[a]);
      return 2;
    }
    // Scan the source trees only; skip build output and third-party-ish
    // top-level dirs by construction.
    for (const char* dir :
         {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path sub = root / dir;
      if (!fs::is_directory(sub)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(sub)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".h") files.push_back(entry.path());
      }
    }
  }

  std::vector<Violation> violations;
  for (const fs::path& file : files) LintFile(file, &violations);

  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "gef_lint: %zu violation(s) in %zu files\n",
                 violations.size(), files.size());
    return 1;
  }
  std::fprintf(stderr, "gef_lint: %zu files clean\n", files.size());
  return 0;
}
