// gef_lint: fast token-level, multi-pass checker for repo-specific
// rules that compilers and clang-tidy do not enforce. Registered as a
// ctest so the gate runs in tier-1 (`ctest -R gef_lint`). Exits 0 when
// the tree is clean, 1 with one `file:line: [rule] message` diagnostic
// per finding.
//
// Per-line rules (see DESIGN.md §3.11):
//   gef-raw-rand        `rand(`, `srand(` or `std::random_device` anywhere
//                       outside src/stats/rng.* — all randomness must flow
//                       through the seeded, reproducible Rng.
//   gef-cout            `std::cout` inside src/ — library code reports via
//                       Status or writes caller-supplied streams; stdout
//                       belongs to the tools.
//   gef-naked-new       `new` expression inside src/ without an owning
//                       container/smart pointer. Deliberate leaks (fork
//                       safety, leaky singletons) carry a
//                       `// NOLINT(gef-naked-new)` comment on the line.
//   gef-float-narrow    `float x = <double literal>` inside src/ — the
//                       numeric core is double end to end; a stray float
//                       literal silently halves precision.
//   gef-todo-owner      `TODO` comment without an owner: must be written
//                       `TODO(owner): ...` so stale notes are traceable.
//
// Architectural passes (DESIGN.md §3.16):
//   gef-layer-order     include-graph layering. src/ layers form a total
//                       order — util → obs → linalg → stats → data →
//                       forest → gam → explain → gef → serve — and a
//                       file may only include headers of its own or a
//                       lower layer. Upward includes (and therefore any
//                       include cycle) fail the gate. tools/, tests/,
//                       bench/ and examples/ sit above every layer.
//   gef-layer-unknown   a directory under src/ that has no assigned
//                       rank: adding a layer requires declaring its
//                       place in the DAG here.
//   gef-raw-mutex       concurrency hygiene. Raw std::mutex /
//                       std::lock_guard / std::condition_variable /
//                       pthread_* inside src/ outside util/mutex.h —
//                       all locking goes through the CAPABILITY-
//                       annotated gef::Mutex wrappers so Clang thread
//                       safety analysis sees every acquisition
//                       (std::once_flag/call_once stay allowed: a
//                       stronger, self-contained primitive).
//   gef-wall-time       determinism. Wall-clock reads (`time(`,
//                       `clock(`, `gettimeofday(`, `localtime(`, ...)
//                       inside src/ — pipeline results must never
//                       depend on when they ran; timing belongs to
//                       util/timer (steady_clock) and the obs layer.
//
// The scanner strips comments and string/character literals before
// applying the code rules (so `"new"` in a string never fires) and keeps
// the comment text for the TODO rule. A line whose raw text contains
// `NOLINT` is exempt from all code rules on that line. Include
// directives are parsed from the raw text (their paths live inside
// string literals). Anything under a `lint_fixtures` directory is
// skipped when scanning a repo root — those trees are the planted-
// violation corpus of the gef_lint self-test, which points the linter
// *at* a fixture root directly.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct FileText {
  // Per source line: code with comments + string/char literals blanked
  // to spaces (column positions preserved), the comment text on that
  // line (if any), and the raw line.
  std::vector<std::string> code;
  std::vector<std::string> comments;
  std::vector<std::string> raw;
};

// Single-pass lexer: tracks block comments and literals across lines.
FileText Lex(const std::string& text) {
  FileText out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string code_line, comment_line, raw_line;

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    out.raw.push_back(raw_line);
    code_line.clear();
    comment_line.clear();
    raw_line.clear();
    if (state == State::kLineComment) state = State::kCode;
  };

  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    char c = text[i];
    if (c == '\n') {
      flush_line();
      continue;
    }
    raw_line += c;
    char next = i + 1 < n ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          raw_line += next;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          raw_line += next;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw strings are not used in this tree; treat `R"` like a
          // plain literal opener (good enough for a gate, and the lint
          // source itself avoids them).
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          raw_line += next;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          raw_line += next;
          code_line += "  ";
          ++i;
        } else if (c == quote) {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  if (!raw_line.empty() || !code_line.empty()) flush_line();
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Word-boundary search for `ident` in blanked code text.
bool HasIdent(const std::string& line, const std::string& ident) {
  size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + ident.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Qualified-token search (tokens may contain "::"): boundaries reject
// identifier characters and further qualification on either side, so
// `std::condition_variable` does not fire on
// `std::condition_variable_any` and `mystd::mutex` never matches.
bool HasQualifiedToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok =
        pos == 0 || (!IsIdentChar(line[pos - 1]) && line[pos - 1] != ':');
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Identifier-prefix search: any identifier starting with `prefix`
// (pthread_create, pthread_mutex_lock, ...).
bool HasIdentPrefix(const std::string& line, const std::string& prefix) {
  size_t pos = 0;
  while ((pos = line.find(prefix, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || (!IsIdentChar(line[pos - 1]) &&
                                line[pos - 1] != ':');
    if (left_ok) return true;
    pos += prefix.size();
  }
  return false;
}

// `<name>(` call syntax with the parenthesis (so `operator_rand` or a
// member named rand_ never fires). `allow_member` controls whether
// `.name(` / `->name(` count (they do not, for wall-time: a method
// named time() on a repo type is not the C library call).
bool HasCall(const std::string& line, const char* name,
             bool flag_member_calls) {
  const std::string ident(name);
  size_t pos = 0;
  while ((pos = line.find(ident, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    if (!flag_member_calls && pos > 0) {
      char prev = line[pos - 1];
      // `.time(` / `->time(` are member calls on repo types.
      if (prev == '.' || (prev == '>' && pos > 1 && line[pos - 2] == '-')) {
        left_ok = false;
      }
    }
    size_t end = pos + ident.size();
    size_t after = end;
    while (after < line.size() && line[after] == ' ') ++after;
    bool called = after < line.size() && line[after] == '(';
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok && called) return true;
    pos = end;
  }
  return false;
}

bool HasRandCall(const std::string& line) {
  return HasCall(line, "rand", /*flag_member_calls=*/true) ||
         HasCall(line, "srand", /*flag_member_calls=*/true);
}

// Wall-clock reads that would make pipeline output depend on when it
// ran. steady_clock/chrono stay fine (identifiers differ); member
// functions that happen to be called time() are skipped.
bool HasWallTimeCall(const std::string& line) {
  for (const char* name : {"time", "clock", "gettimeofday", "localtime",
                           "gmtime", "ctime", "timespec_get"}) {
    if (HasCall(line, name, /*flag_member_calls=*/false)) return true;
  }
  return false;
}

// Raw synchronization primitives banned outside the wrapper home; all
// of src/ locks through the annotated gef::Mutex family (util/mutex.h)
// so -Wthread-safety sees every acquisition.
bool HasRawSyncPrimitive(const std::string& line) {
  static const char* const kTokens[] = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any",
  };
  for (const char* token : kTokens) {
    if (HasQualifiedToken(line, token)) return true;
  }
  return HasIdentPrefix(line, "pthread_");
}

// `float <ident> = <literal>` / `float <ident>{<literal>}` where the
// literal is a double (has '.' or exponent, no f/F suffix).
bool HasFloatNarrowing(const std::string& line) {
  size_t pos = 0;
  while ((pos = line.find("float", pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t i = pos + 5;
    pos = i;
    if (!left_ok || (i < line.size() && IsIdentChar(line[i]))) continue;
    while (i < line.size() && line[i] == ' ') ++i;
    size_t ident_start = i;
    while (i < line.size() && IsIdentChar(line[i])) ++i;
    if (i == ident_start) continue;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size() || (line[i] != '=' && line[i] != '{')) continue;
    ++i;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '-') ++i;
    size_t lit_start = i;
    bool has_dot = false, has_exp = false, is_hex = false;
    if (i + 1 < line.size() && line[i] == '0' &&
        (line[i + 1] == 'x' || line[i + 1] == 'X')) {
      is_hex = true;
    }
    while (i < line.size()) {
      char c = line[i];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '\'') {
        ++i;
      } else if (c == '.') {
        has_dot = true;
        ++i;
      } else if (!is_hex && (c == 'e' || c == 'E')) {
        has_exp = true;
        ++i;
        if (i < line.size() && (line[i] == '+' || line[i] == '-')) ++i;
      } else {
        break;
      }
    }
    if (i == lit_start || is_hex || (!has_dot && !has_exp)) continue;
    bool has_f_suffix =
        i < line.size() && (line[i] == 'f' || line[i] == 'F');
    if (!has_f_suffix) return true;
  }
  return false;
}

// `TODO` in a comment must be `TODO(<owner>)`.
bool HasOwnerlessTodo(const std::string& comment) {
  size_t pos = 0;
  while ((pos = comment.find("TODO", pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(comment[pos - 1]);
    size_t i = pos + 4;
    pos = i;
    // "TODOs"/"TODO_LIST" etc. are prose, not a work marker.
    if (!left_ok || (i < comment.size() && IsIdentChar(comment[i]))) continue;
    if (i >= comment.size() || comment[i] != '(') return true;
    size_t close = comment.find(')', i);
    if (close == std::string::npos || close == i + 1) return true;
  }
  return false;
}

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------
// Layering pass.
//
// The src/ layer DAG is pinned as a total order; a file may include only
// its own or a lower layer, which makes upward edges — and therefore any
// cycle — impossible to merge. tools/tests/bench/examples rank above
// everything and may include any layer.
// ---------------------------------------------------------------------

constexpr int kTopRank = 100;  // tools / tests / bench / examples

// Rank table == the architecture. Growing a new src/ directory means
// adding it here at its place in the order (gef-layer-unknown fires
// until it is declared).
int LayerRank(const std::string& layer) {
  static const std::pair<const char*, int> kRanks[] = {
      {"util", 0},      {"obs", 1},     {"linalg", 2},  {"stats", 3},
      {"data", 4},      {"forest", 5},  {"gam", 6},     {"surrogate", 7},
      {"explain", 8},   {"gef", 9},     {"store", 10},  {"serve", 11},
  };
  for (const auto& [name, rank] : kRanks) {
    if (layer == name) return rank;
  }
  return -1;  // unknown
}

// `#include "layer/header.h"` on a raw line; returns the quoted path or
// "" when the line is not a quoted include.
std::string ParseQuotedInclude(const std::string& raw) {
  size_t i = 0;
  while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
  if (i >= raw.size() || raw[i] != '#') return "";
  ++i;
  while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
  if (raw.compare(i, 7, "include") != 0) return "";
  i += 7;
  while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t')) ++i;
  if (i >= raw.size() || raw[i] != '"') return "";
  size_t close = raw.find('"', i + 1);
  if (close == std::string::npos) return "";
  return raw.substr(i + 1, close - i - 1);
}

struct ScannedFile {
  fs::path path;
  fs::path rel;        // relative to the scan root
  std::string layer;   // "" when not under src/
  int rank = kTopRank;
  FileText text;
};

void LayeringPass(const ScannedFile& file, std::vector<Violation>* out) {
  if (file.layer.empty()) return;  // only src/ files are rank-bound
  if (file.rank < 0) {
    out->push_back(
        {file.path.string(), 1, "gef-layer-unknown",
         "src/" + file.layer +
             " has no rank in the layer DAG; declare its place in "
             "LayerRank() (tools/gef_lint.cc) and DESIGN.md §3.16"});
    return;
  }
  for (size_t l = 0; l < file.text.raw.size(); ++l) {
    if (file.text.raw[l].find("NOLINT") != std::string::npos) continue;
    const std::string include = ParseQuotedInclude(file.text.raw[l]);
    if (include.empty()) continue;
    const size_t slash = include.find('/');
    if (slash == std::string::npos) continue;  // same-dir or local
    const std::string target = include.substr(0, slash);
    const int target_rank = LayerRank(target);
    if (target_rank < 0) continue;  // not a src/ layer path
    if (target_rank > file.rank) {
      out->push_back(
          {file.path.string(), l + 1, "gef-layer-order",
           "upward include: src/" + file.layer + " (rank " +
               std::to_string(file.rank) + ") must not include " +
               target + "/ (rank " + std::to_string(target_rank) +
               "); the layer order is util < obs < linalg < stats < "
               "data < forest < gam < surrogate < explain < gef < "
               "store < serve"});
    }
  }
}

// ---------------------------------------------------------------------
// Per-line pass (style, hygiene, determinism rules).
// ---------------------------------------------------------------------

void LineRulesPass(const ScannedFile& file, std::vector<Violation>* out) {
  const std::string fname = file.path.filename().string();
  // The RNG wrapper is the one sanctioned home of raw randomness (and
  // of reading a clock to mix into an explicitly-requested nondeterministic
  // seed); the mutex wrapper is the one sanctioned home of the raw std
  // synchronization primitives; this checker's own source spells every
  // rule out verbatim.
  const bool rng_home = fname == "rng.h" || fname == "rng.cc";
  const bool mutex_home =
      fname == "mutex.h" || fname == "thread_annotations.h";
  const bool self = fname == "gef_lint.cc";
  const bool in_src =
      !file.rel.empty() && file.rel.begin()->string() == "src";

  for (size_t l = 0; l < file.text.code.size(); ++l) {
    const std::string& code = file.text.code[l];
    const std::string& comment = file.text.comments[l];
    const size_t line_no = l + 1;
    const bool nolint =
        file.text.raw[l].find("NOLINT") != std::string::npos;

    if (self) continue;  // this file spells every rule out verbatim
    if (HasOwnerlessTodo(comment)) {
      out->push_back({file.path.string(), line_no, "gef-todo-owner",
                      "TODO without an owner; write TODO(name): ..."});
    }
    if (nolint) continue;

    if (!rng_home &&
        (HasRandCall(code) || HasIdent(code, "random_device"))) {
      out->push_back({file.path.string(), line_no, "gef-raw-rand",
                      "raw randomness outside src/stats/rng; use Rng"});
    }
    if (in_src && !rng_home && HasWallTimeCall(code)) {
      out->push_back({file.path.string(), line_no, "gef-wall-time",
                      "wall-clock read in library code; results must "
                      "not depend on when they ran — use "
                      "util/timer (steady_clock) for durations"});
    }
    if (in_src && !mutex_home && HasRawSyncPrimitive(code)) {
      out->push_back({file.path.string(), line_no, "gef-raw-mutex",
                      "raw std synchronization primitive in library "
                      "code; use the annotated gef::Mutex / MutexLock / "
                      "CondVar wrappers (util/mutex.h) so "
                      "-Wthread-safety sees the acquisition"});
    }
    if (in_src && code.find("std::cout") != std::string::npos) {
      out->push_back({file.path.string(), line_no, "gef-cout",
                      "std::cout in library code; return Status or take "
                      "an ostream"});
    }
    if (in_src && HasIdent(code, "new")) {
      out->push_back({file.path.string(), line_no, "gef-naked-new",
                      "naked new in library code; use containers or "
                      "std::make_unique, or annotate a deliberate leak "
                      "with NOLINT(gef-naked-new)"});
    }
    if (in_src && HasFloatNarrowing(code)) {
      out->push_back({file.path.string(), line_no, "gef-float-narrow",
                      "double literal narrowed to float; the numeric "
                      "core is double end to end"});
    }
  }
}

bool UnderFixtures(const fs::path& rel) {
  for (const fs::path& part : rel) {
    if (part == "lint_fixtures") return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <repo-root> [more-roots...]\n",
                 argv[0]);
    return 2;
  }

  std::vector<ScannedFile> files;
  for (int a = 1; a < argc; ++a) {
    const fs::path root(argv[a]);
    if (!fs::exists(root)) {
      std::fprintf(stderr, "gef_lint: no such path: %s\n", argv[a]);
      return 2;
    }
    // Scan the source trees only; skip build output and third-party-ish
    // top-level dirs by construction.
    for (const char* dir :
         {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path sub = root / dir;
      if (!fs::is_directory(sub)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(sub)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".cc" && ext != ".h") continue;
        ScannedFile file;
        file.path = entry.path();
        file.rel = fs::relative(entry.path(), root);
        if (UnderFixtures(file.rel)) continue;  // self-test corpus
        auto it = file.rel.begin();
        if (it != file.rel.end() && it->string() == "src" &&
            ++it != file.rel.end()) {
          // src/<layer>/...; a file directly under src/ has no layer.
          fs::path tail = *it;
          if (std::next(it) != file.rel.end()) {
            file.layer = tail.string();
            file.rank = LayerRank(file.layer);
          }
        }
        std::ifstream in(file.path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        file.text = Lex(buffer.str());
        files.push_back(std::move(file));
      }
    }
  }

  std::vector<Violation> violations;
  for (const ScannedFile& file : files) {
    LineRulesPass(file, &violations);
    LayeringPass(file, &violations);
  }

  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "gef_lint: %zu violation(s) in %zu files\n",
                 violations.size(), files.size());
    return 1;
  }
  std::fprintf(stderr, "gef_lint: %zu files clean\n", files.size());
  return 0;
}
