#!/usr/bin/env bash
# Full analysis driver: builds and runs the test suite under the Release
# configuration and the sanitizer matrix, plus the gef_lint gate. This is
# what CI runs (see .github/workflows/ci.yml) and what a developer runs
# locally before a substantial PR:
#
#   tools/run_analysis.sh            # every job below (clang jobs skip
#                                    # with a note when clang is absent)
#   tools/run_analysis.sh release    # one job only
#   tools/run_analysis.sh asan-ubsan
#   tools/run_analysis.sh tsan
#   tools/run_analysis.sh lint
#   tools/run_analysis.sh threadsafety  # clang -Wthread-safety -Werror
#                                       # + negative-compile proof
#   tools/run_analysis.sh tidy          # blocking clang-tidy (preset)
#
# Each job builds into its own out-of-source directory (build-analysis-*)
# so the matrix never contaminates the default ./build tree. Exits
# non-zero on the first failing job.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SUPP="${ROOT}/tools/sanitizers"
JOBS="${GEF_ANALYSIS_JOBS:-$(nproc)}"
CTEST_ARGS=(--output-on-failure -j "${JOBS}")

run_job() {  # name, extra cmake args...
  local name="$1"
  shift
  local dir="${ROOT}/build-analysis-${name}"
  echo "=== [${name}] configure + build ==="
  cmake -B "${dir}" -S "${ROOT}" -DGEF_WERROR=ON "$@"
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  (cd "${dir}" && ctest "${CTEST_ARGS[@]}")
}

job_release() {
  run_job release -DCMAKE_BUILD_TYPE=Release -DGEF_SANITIZE=
}

job_asan_ubsan() {
  # halt_on_error makes ASan behave like UBSan's
  # -fno-sanitize-recover=all: first finding fails the test.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  LSAN_OPTIONS="suppressions=${SUPP}/lsan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1:suppressions=${SUPP}/ubsan.supp" \
    run_job asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGEF_SANITIZE=address,undefined
}

job_tsan() {
  TSAN_OPTIONS="halt_on_error=1:suppressions=${SUPP}/tsan.supp" \
    run_job tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGEF_SANITIZE=thread
}

job_lint() {
  local dir="${ROOT}/build-analysis-lint"
  echo "=== [lint] gef_lint ==="
  cmake -B "${dir}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${dir}" -j "${JOBS}" --target gef_lint_cli
  "${dir}/tools/gef_lint" "${ROOT}"
  echo "=== [lint] gef_lint fixture self-test ==="
  cmake -DLINT_BIN="${dir}/tools/gef_lint" \
        -DFIXTURES="${ROOT}/tests/lint_fixtures" \
        -P "${ROOT}/tests/lint_fixtures_test.cmake"
}

# Whole-tree Clang build with -Wthread-safety promoted to an error
# (-Wthread-safety is always-on for Clang; GEF_WERROR supplies -Werror),
# then the negative-compile + wrapper-semantics ctests that prove the
# analysis is armed rather than silently inert.
job_threadsafety() {
  local cxx="${GEF_CLANGXX:-clang++}"
  local cc="${GEF_CLANG:-clang}"
  command -v "${cxx}" >/dev/null || {
    echo "threadsafety: ${cxx} not found" >&2
    exit 3
  }
  local dir="${ROOT}/build-analysis-threadsafety"
  echo "=== [threadsafety] clang -Wthread-safety -Werror build ==="
  cmake -B "${dir}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_C_COMPILER="${cc}" -DCMAKE_CXX_COMPILER="${cxx}" \
    -DGEF_WERROR=ON
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [threadsafety] negative-compile + wrapper ctests ==="
  (cd "${dir}" && ctest "${CTEST_ARGS[@]}" \
    -R 'thread_safety_negcompile|mutex_test|gef_lint')
}

# Blocking clang-tidy over src/ and tools/ via the `tidy` preset
# (compile_commands.json comes from the same configure).
job_tidy() {
  command -v clang-tidy >/dev/null || {
    echo "tidy: clang-tidy not found" >&2
    exit 3
  }
  echo "=== [tidy] clang-tidy --warnings-as-errors (preset: tidy) ==="
  cmake --preset tidy -S "${ROOT}"
  cmake --build "${ROOT}/build-tidy" -j "${JOBS}"
}

case "${1:-all}" in
  release)      job_release ;;
  asan-ubsan)   job_asan_ubsan ;;
  tsan)         job_tsan ;;
  lint)         job_lint ;;
  threadsafety) job_threadsafety ;;
  tidy)         job_tidy ;;
  all)
    job_lint
    job_release
    job_asan_ubsan
    job_tsan
    # The clang-based gates run wherever clang exists (CI always has
    # it); a GCC-only box skips them with a note instead of failing.
    if command -v "${GEF_CLANGXX:-clang++}" >/dev/null; then
      job_threadsafety
    else
      echo "note: clang++ not found — skipping threadsafety job (CI runs it)"
    fi
    if command -v clang-tidy >/dev/null; then
      job_tidy
    else
      echo "note: clang-tidy not found — skipping tidy job (CI runs it)"
    fi
    ;;
  *)
    echo "usage: $0 [all|release|asan-ubsan|tsan|lint|threadsafety|tidy]" >&2
    exit 2
    ;;
esac

echo "analysis: all requested jobs passed"
