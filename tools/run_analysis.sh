#!/usr/bin/env bash
# Full analysis driver: builds and runs the test suite under the Release
# configuration and the sanitizer matrix, plus the gef_lint gate. This is
# what CI runs (see .github/workflows/ci.yml) and what a developer runs
# locally before a substantial PR:
#
#   tools/run_analysis.sh            # release + asan,ubsan + tsan + lint
#   tools/run_analysis.sh release    # one job only
#   tools/run_analysis.sh asan-ubsan
#   tools/run_analysis.sh tsan
#   tools/run_analysis.sh lint
#
# Each job builds into its own out-of-source directory (build-analysis-*)
# so the matrix never contaminates the default ./build tree. Exits
# non-zero on the first failing job.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
SUPP="${ROOT}/tools/sanitizers"
JOBS="${GEF_ANALYSIS_JOBS:-$(nproc)}"
CTEST_ARGS=(--output-on-failure -j "${JOBS}")

run_job() {  # name, extra cmake args...
  local name="$1"
  shift
  local dir="${ROOT}/build-analysis-${name}"
  echo "=== [${name}] configure + build ==="
  cmake -B "${dir}" -S "${ROOT}" -DGEF_WERROR=ON "$@"
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  (cd "${dir}" && ctest "${CTEST_ARGS[@]}")
}

job_release() {
  run_job release -DCMAKE_BUILD_TYPE=Release -DGEF_SANITIZE=
}

job_asan_ubsan() {
  # halt_on_error makes ASan behave like UBSan's
  # -fno-sanitize-recover=all: first finding fails the test.
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  LSAN_OPTIONS="suppressions=${SUPP}/lsan.supp" \
  UBSAN_OPTIONS="print_stacktrace=1:suppressions=${SUPP}/ubsan.supp" \
    run_job asan-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGEF_SANITIZE=address,undefined
}

job_tsan() {
  TSAN_OPTIONS="halt_on_error=1:suppressions=${SUPP}/tsan.supp" \
    run_job tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGEF_SANITIZE=thread
}

job_lint() {
  local dir="${ROOT}/build-analysis-lint"
  echo "=== [lint] gef_lint ==="
  cmake -B "${dir}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${dir}" -j "${JOBS}" --target gef_lint_cli
  "${dir}/tools/gef_lint" "${ROOT}"
}

case "${1:-all}" in
  release)    job_release ;;
  asan-ubsan) job_asan_ubsan ;;
  tsan)       job_tsan ;;
  lint)       job_lint ;;
  all)
    job_lint
    job_release
    job_asan_ubsan
    job_tsan
    ;;
  *)
    echo "usage: $0 [all|release|asan-ubsan|tsan|lint]" >&2
    exit 2
    ;;
esac

echo "analysis: all requested jobs passed"
