// gef_serve — GEF model serving daemon.
//
// Loads one or more forest models, optionally pre-fits their GEF
// surrogates, and serves predictions and explanations over HTTP/1.1 on
// a loopback (or any IPv4) address. See DESIGN.md §3.14 for the
// architecture: ModelRegistry -> SurrogateCache -> RequestBatcher ->
// handlers.
//
// Usage:
//   gef_serve --model forest.txt [--name census] [--format gef|lightgbm]
//             [--store store.gefs]  (mmap a binary model store instead
//                                    of / in addition to --model: every
//                                    forest in it is registered with its
//                                    packed surrogate, predictions run
//                                    zero-copy off the mapping)
//             [--explanation explanation.txt]  (pre-fitted surrogate)
//             [--address 127.0.0.1] [--port 8080]   (0 = ephemeral)
//             [--shards 0]        (reactor event loops w/ SO_REUSEPORT
//                                  listeners; 0 = auto)
//             [--workers 0]       (handler threads per shard; 0 = auto)
//             [--queue-capacity 256]  (per-shard request bound; beyond
//                                      it requests are shed with 429)
//             [--batching true] [--batch-max 64] [--batch-wait-us 1000]
//             [--cache-capacity 8]
//             [--univariate 5] [--bivariate 0] [--samples 20000]
//             [--k 64] [--seed 7]   (surrogate pipeline defaults)
//             [--prefit]   (fit the surrogate before accepting traffic)
//
// Several models: repeat --model with --name via comma lists, e.g.
//   --model a.txt,b.txt --name first,second
//
// Endpoints: POST /v1/predict, POST /v1/explain, GET /v1/models,
// GET /healthz, GET /metrics. SIGINT/SIGTERM drains in-flight requests
// and exits 0.
//
// Exit codes: 0 clean shutdown, 1 bad usage, 2 startup failure.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gef/explanation_io.h"
#include "serve/batcher.h"
#include "serve/handlers.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "util/shutdown.h"
#include "serve/surrogate_cache.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace gef {
namespace {

int Run(int argc, const char* const* argv) {
  InstallShutdownHandler();
  EnableDrainMode();

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;

  std::string model_arg = flags.GetString("model", "");
  std::string store_path = flags.GetString("store", "");
  if (model_arg.empty() && store_path.empty()) {
    std::fprintf(stderr,
                 "usage: gef_serve --model <forest file> | --store "
                 "<store file> [options]\n"
                 "see the header of tools/gef_serve.cc for options\n");
    return 1;
  }
  std::vector<std::string> model_paths =
      model_arg.empty() ? std::vector<std::string>() : Split(model_arg, ',');
  std::string name_arg = flags.GetString("name", "");
  std::vector<std::string> names =
      name_arg.empty() ? std::vector<std::string>() : Split(name_arg, ',');
  std::string format = flags.GetString("format", "gef");
  std::string explanation_path = flags.GetString("explanation", "");

  serve::HttpServer::Options server_options;
  server_options.address = flags.GetString("address", "127.0.0.1");
  server_options.port = flags.GetInt("port", 8080);
  server_options.num_shards = flags.GetInt("shards", 0);
  server_options.workers_per_shard = flags.GetInt("workers", 0);
  const int queue_capacity = flags.GetInt("queue-capacity", 256);
  server_options.read_timeout_ms = flags.GetInt("read-timeout-ms", 5000);
  server_options.write_timeout_ms =
      flags.GetInt("write-timeout-ms", 5000);

  serve::RequestBatcher::Options batch_options;
  batch_options.enabled = flags.GetBool("batching", true);
  batch_options.max_batch =
      static_cast<size_t>(flags.GetInt("batch-max", 64));
  batch_options.max_wait_us = flags.GetInt("batch-wait-us", 1000);

  int cache_capacity = flags.GetInt("cache-capacity", 8);

  GefConfig config;
  config.num_univariate = flags.GetInt("univariate", 5);
  config.num_bivariate = flags.GetInt("bivariate", 0);
  config.num_samples =
      static_cast<size_t>(flags.GetInt("samples", 20000));
  config.k = flags.GetInt("k", 64);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  bool prefit = flags.GetBool("prefit", false);

  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().message().c_str());
    return 1;
  }
  std::vector<std::string> unread = flags.UnreadFlags();
  if (!unread.empty()) {
    std::fprintf(stderr, "unknown flag(s): --%s\n",
                 Join(unread, ", --").c_str());
    return 1;
  }
  if (!names.empty() && names.size() != model_paths.size()) {
    std::fprintf(stderr, "--name lists %zu names for %zu models\n",
                 names.size(), model_paths.size());
    return 1;
  }
  if (cache_capacity < 1) {
    std::fprintf(stderr, "--cache-capacity must be >= 1\n");
    return 1;
  }
  if (queue_capacity < 1) {
    std::fprintf(stderr, "--queue-capacity must be >= 1\n");
    return 1;
  }
  server_options.queue_capacity = static_cast<size_t>(queue_capacity);

  serve::ModelRegistry registry;
  if (!store_path.empty()) {
    Status loaded = registry.LoadStore(store_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load store %s: %s\n",
                   store_path.c_str(), loaded.ToString().c_str());
      return 2;
    }
    for (const auto& model : registry.List()) {
      std::printf(
          "mmap-loaded model '%s' from store %s (hash %s, %zu trees%s)\n",
          model->name.c_str(), store_path.c_str(),
          HashToHex(model->hash).c_str(), model->forest.num_trees(),
          model->preloaded_explanation != nullptr ? ", packed surrogate"
                                                  : "");
    }
  }
  for (size_t i = 0; i < model_paths.size(); ++i) {
    const std::string name =
        i < names.size() ? names[i] : "model" + std::to_string(i);
    Status loaded = registry.LoadModel(name, model_paths[i], format);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n",
                   model_paths[i].c_str(), loaded.ToString().c_str());
      return 2;
    }
    auto model = registry.Get(name);
    std::printf("loaded model '%s' from %s (hash %s, %zu trees)\n",
                name.c_str(), model_paths[i].c_str(),
                HashToHex(model->hash).c_str(),
                model->forest.num_trees());
  }

  if (!explanation_path.empty()) {
    if (model_paths.size() != 1) {
      std::fprintf(stderr,
                   "--explanation requires exactly one --model\n");
      return 1;
    }
    auto loaded = LoadExplanation(explanation_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load explanation: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    auto model = registry.List()[0];
    std::shared_ptr<const GefExplanation> explanation(
        std::move(loaded).value());
    Status replaced =
        registry.AddModel(model->name, model->forest,
                          model->source_path, std::move(explanation));
    if (!replaced.ok()) {
      std::fprintf(stderr, "cannot attach explanation: %s\n",
                   replaced.ToString().c_str());
      return 2;
    }
    std::printf("attached pre-fitted explanation from %s\n",
                explanation_path.c_str());
  }

  serve::SurrogateCache cache(static_cast<size_t>(cache_capacity));
  serve::RequestBatcher batcher(batch_options);

  serve::ServeContext context;
  context.registry = &registry;
  context.cache = &cache;
  context.batcher = &batcher;
  context.default_config = config;

  if (prefit) {
    for (const auto& model : registry.List()) {
      if (model->preloaded_explanation != nullptr) continue;
      std::printf("pre-fitting surrogate for '%s'...\n",
                  model->name.c_str());
      std::fflush(stdout);
      const Forest& forest = model->forest;
      auto surrogate = cache.GetOrFit(
          model->hash, config,
          [&forest, &config] { return ExplainForest(forest, config); });
      if (surrogate == nullptr) {
        std::fprintf(stderr, "surrogate fit failed for '%s'\n",
                     model->name.c_str());
        return 2;
      }
    }
  }

  serve::HttpServer server(context, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  // The smoke test and loadgen parse this line for the bound port
  // (--port 0); flush so they see it before the first request.
  std::printf("listening on %s:%d\n", server_options.address.c_str(),
              server.bound_port());
  std::printf("reactor: %d shard(s), queue capacity %d\n",
              server.num_shards(), queue_capacity);
  std::fflush(stdout);

  server.Wait();
  batcher.Stop();
  std::printf("drained, exiting\n");
  return 0;
}

}  // namespace
}  // namespace gef

int main(int argc, char** argv) { return gef::Run(argc, argv); }
