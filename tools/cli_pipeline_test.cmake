# Integration test for the CLI tools: walks the full third-party
# workflow (generate data -> train a forest -> explain it -> save the
# explanation -> reload it and produce a local explanation) and fails on
# any non-zero exit or missing artifact.

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

run_step(${DATASETS_BIN} --name gprime --out ${WORK_DIR}/train.csv
         --rows 1500 --seed 5)
run_step(${TRAIN_BIN} --data ${WORK_DIR}/train.csv
         --out ${WORK_DIR}/forest.txt --trees 40 --leaves 8)
if(NOT EXISTS ${WORK_DIR}/forest.txt)
  message(FATAL_ERROR "gef_train produced no model file")
endif()

run_step(${EXPLAIN_BIN} --model ${WORK_DIR}/forest.txt --summary)
run_step(${EXPLAIN_BIN} --model ${WORK_DIR}/forest.txt
         --univariate 4 --samples 2000 --k 24
         --curves ${WORK_DIR}/curves.csv
         --save ${WORK_DIR}/explanation.txt
         --probe ${WORK_DIR}/train.csv)
foreach(artifact curves.csv explanation.txt)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "missing artifact: ${artifact}")
  endif()
endforeach()

# Reload path skips the pipeline and must still explain an instance.
run_step(${EXPLAIN_BIN} --model ${WORK_DIR}/forest.txt
         --load ${WORK_DIR}/explanation.txt
         --explain "0.5,0.5,0.5,0.5,0.5")

# Classification path: census data -> binary forest -> explanation.
run_step(${DATASETS_BIN} --name census --out ${WORK_DIR}/census.csv
         --rows 1500 --seed 9)
run_step(${TRAIN_BIN} --data ${WORK_DIR}/census.csv
         --out ${WORK_DIR}/census_forest.txt --objective binary
         --trees 30 --leaves 8)
run_step(${EXPLAIN_BIN} --model ${WORK_DIR}/census_forest.txt
         --univariate 3 --samples 1500 --k 16
         --sampling k-quantile)

# Random Forest path.
run_step(${TRAIN_BIN} --data ${WORK_DIR}/train.csv
         --out ${WORK_DIR}/rf.txt --algo rf --trees 20 --leaves 16)
run_step(${EXPLAIN_BIN} --model ${WORK_DIR}/rf.txt --summary)

# Bad usage must fail cleanly.
execute_process(COMMAND ${EXPLAIN_BIN} --model ${WORK_DIR}/forest.txt
                --no-such-flag 1 RESULT_VARIABLE code
                OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "unknown flag was not rejected")
endif()

message(STATUS "CLI pipeline test passed")
